"""Parsing context declarations (Figures 7-8)."""

import pytest

from repro.errors import DiaSpecSyntaxError
from repro.lang.ast_nodes import (
    Duration,
    GetContext,
    GetSource,
    GroupBy,
    Publish,
    WhenPeriodic,
    WhenProvidedContext,
    WhenProvidedSource,
    WhenRequired,
)
from repro.lang.parser import parse

FIGURE_7_ALERT = """\
context Alert as Integer {
    when provided tickSecond from Clock
    get consumption from Cooker
    maybe publish;
}
"""

FIGURE_8_AVAILABILITY = """\
context ParkingAvailability as Availability[] {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot
    with map as Boolean reduce as Integer
    always publish;
}
"""

FIGURE_8_USAGE = """\
context ParkingUsagePattern as UsagePattern[] {
    when periodic presence from PresenceSensor <1 hr>
    grouped by parkingLot
    no publish;

    when required;
}
"""

FIGURE_8_OCCUPANCY = """\
context AverageOccupancy as ParkingOccupancy[] {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot every <24 hr>
    always publish;
}
"""

FIGURE_8_SUGGESTION = """\
context ParkingSuggestion as ParkingLotEnum[] {
    when provided ParkingAvailability
    get ParkingUsagePattern
    always publish;
}
"""


class TestFigure7:
    def test_alert_interaction_shape(self):
        context = parse(FIGURE_7_ALERT).contexts[0]
        assert context.name == "Alert"
        assert context.type_name == "Integer"
        (interaction,) = context.interactions
        assert interaction == WhenProvidedSource(
            source="tickSecond",
            device="Clock",
            gets=(GetSource("consumption", "Cooker"),),
            publish=Publish.MAYBE,
        )


class TestFigure8:
    def test_availability_mapreduce_group(self):
        context = parse(FIGURE_8_AVAILABILITY).contexts[0]
        assert context.type_name == "Availability[]"
        (interaction,) = context.interactions
        assert isinstance(interaction, WhenPeriodic)
        assert interaction.period == Duration(10, "min")
        assert interaction.group == GroupBy(
            attribute="parkingLot",
            map_type_name="Boolean",
            reduce_type_name="Integer",
        )
        assert interaction.publish is Publish.ALWAYS

    def test_usage_pattern_no_publish_plus_required(self):
        context = parse(FIGURE_8_USAGE).contexts[0]
        periodic, required = context.interactions
        assert periodic.publish is Publish.NO
        assert isinstance(required, WhenRequired)
        assert context.is_queryable

    def test_occupancy_window(self):
        context = parse(FIGURE_8_OCCUPANCY).contexts[0]
        (interaction,) = context.interactions
        assert interaction.group.window == Duration(24, "hr")
        assert not interaction.group.uses_mapreduce

    def test_suggestion_context_subscription(self):
        context = parse(FIGURE_8_SUGGESTION).contexts[0]
        (interaction,) = context.interactions
        assert interaction == WhenProvidedContext(
            context="ParkingAvailability",
            gets=(GetContext("ParkingUsagePattern"),),
            publish=Publish.ALWAYS,
        )


class TestDurations:
    @pytest.mark.parametrize(
        "text,seconds",
        [
            ("<500 ms>", 0.5),
            ("<1 s>", 1.0),
            ("<2 sec>", 2.0),
            ("<10 min>", 600.0),
            ("<1 hr>", 3600.0),
            ("<1 day>", 86400.0),
        ],
    )
    def test_units(self, text, seconds):
        source = (
            "context C as Integer { when periodic s from D "
            + text
            + " always publish; }"
        )
        (interaction,) = parse(source).contexts[0].interactions
        assert interaction.period.seconds == seconds

    def test_fractional_duration(self):
        source = (
            "context C as Integer { when periodic s from D <2.5 s> "
            "always publish; }"
        )
        (interaction,) = parse(source).contexts[0].interactions
        assert interaction.period.seconds == 2.5

    def test_unknown_unit_rejected(self):
        with pytest.raises(DiaSpecSyntaxError, match="unit"):
            parse(
                "context C as Integer { when periodic s from D "
                "<5 fortnight> always publish; }"
            )

    def test_zero_duration_rejected(self):
        with pytest.raises(DiaSpecSyntaxError, match="positive"):
            parse(
                "context C as Integer { when periodic s from D <0 s> "
                "always publish; }"
            )


class TestPublishDisciplines:
    @pytest.mark.parametrize(
        "keyword,expected",
        [
            ("always", Publish.ALWAYS),
            ("maybe", Publish.MAYBE),
            ("no", Publish.NO),
        ],
    )
    def test_each_discipline(self, keyword, expected):
        source = (
            f"context C as Integer {{ when provided s from D {keyword} "
            "publish; }"
        )
        (interaction,) = parse(source).contexts[0].interactions
        assert interaction.publish is expected

    def test_missing_publish_keyword(self):
        with pytest.raises(DiaSpecSyntaxError, match="publish"):
            parse("context C as Integer { when provided s from D always; }")


class TestGets:
    def test_multiple_get_clauses(self):
        source = (
            "context C as Integer { when provided s from D "
            "get a from X get b from Y get Other always publish; }"
        )
        (interaction,) = parse(source).contexts[0].interactions
        assert interaction.gets == (
            GetSource("a", "X"),
            GetSource("b", "Y"),
            GetContext("Other"),
        )


class TestContextErrors:
    def test_context_requires_type(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse("context C { when required; }")

    def test_group_requires_attribute(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse(
                "context C as Integer { when periodic s from D <1 s> "
                "grouped by always publish; }"
            )

    def test_map_without_reduce_rejected(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse(
                "context C as Integer { when periodic s from D <1 s> "
                "grouped by a with map as Boolean always publish; }"
            )

    def test_array_of_array_type(self):
        context = parse(
            "context C as Integer[][] { when required; }"
        ).contexts[0]
        assert context.type_name == "Integer[][]"


class TestPlacementAnnotation:
    def test_at_edge_parses(self):
        context = parse(
            "context C as Integer at edge { when periodic s from D <1 s> "
            "grouped by a with map as Boolean reduce as Integer "
            "always publish; }"
        ).contexts[0]
        assert context.placement == "edge"

    def test_at_cloud_parses(self):
        context = parse(
            "context C as Integer at cloud { when required; }"
        ).contexts[0]
        assert context.placement == "cloud"

    def test_no_annotation_means_none(self):
        context = parse("context C as Integer { when required; }").contexts[0]
        assert context.placement is None

    def test_unknown_tier_rejected(self):
        with pytest.raises(DiaSpecSyntaxError, match="edge"):
            parse("context C as Integer at orbit { when required; }")

    def test_tier_names_stay_usable_as_identifiers(self):
        # "edge"/"cloud" are contextual: a device may be named either.
        context = parse(
            "context C as Integer { when provided s from Edge "
            "get cloud from Edge always publish; }"
        ).contexts[0]
        (interaction,) = context.interactions
        assert interaction.device == "Edge"
