"""Pretty-printer round-trip: parse(pretty(spec)) == spec.

Exercised on the paper's designs and on randomly generated ASTs
(property-based), so the printer and parser can never drift apart.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.avionics.design import DESIGN_SOURCE as AVIONICS
from repro.apps.cooker.design import DESIGN_SOURCE as COOKER
from repro.apps.homeassist.design import DESIGN_SOURCE as HOMEASSIST
from repro.apps.parking.design import DESIGN_SOURCE as PARKING
from repro.lang.ast_nodes import (
    ActionDecl,
    AttributeDecl,
    ContextDecl,
    ControllerDecl,
    ControllerReaction,
    DeviceDecl,
    DoClause,
    Duration,
    EnumerationDecl,
    GetContext,
    GetSource,
    GroupBy,
    Param,
    Publish,
    SourceDecl,
    Spec,
    StructureDecl,
    WhenPeriodic,
    WhenProvidedContext,
    WhenProvidedSource,
    WhenRequired,
)
from repro.lang.parser import parse
from repro.lang.pretty import pretty


class TestPaperDesigns:
    def test_cooker_roundtrip(self):
        spec = parse(COOKER)
        assert parse(pretty(spec)) == spec

    def test_parking_roundtrip(self):
        spec = parse(PARKING)
        assert parse(pretty(spec)) == spec

    def test_avionics_roundtrip(self):
        spec = parse(AVIONICS)
        assert parse(pretty(spec)) == spec

    def test_homeassist_roundtrip(self):
        spec = parse(HOMEASSIST)
        assert parse(pretty(spec)) == spec

    def test_pretty_is_idempotent(self):
        spec = parse(PARKING)
        once = pretty(spec)
        assert pretty(parse(once)) == once


# ---------------------------------------------------------------------------
# Property-based round-trip over random ASTs
# ---------------------------------------------------------------------------

identifiers = st.from_regex(r"[a-z][A-Za-z0-9]{0,8}", fullmatch=True).filter(
    lambda s: s not in {
        "action", "always", "as", "at", "attribute", "by", "context",
        "controller", "device", "do", "enumeration", "every", "extends",
        "from", "get", "grouped", "indexed", "map", "maybe", "no", "on",
        "periodic", "provided", "publish", "reduce", "required", "source",
        "structure", "when", "with",
    }
)
type_names = st.sampled_from(["Integer", "Float", "Boolean", "String"])
upper_identifiers = st.from_regex(r"[A-Z][A-Za-z0-9]{0,8}", fullmatch=True)
durations = st.builds(
    Duration,
    value=st.integers(min_value=1, max_value=999).map(float),
    unit=st.sampled_from(["ms", "s", "min", "hr", "day"]),
)
publishes = st.sampled_from(list(Publish))

params = st.builds(Param, name=identifiers, type_name=type_names)

sources = st.builds(
    SourceDecl,
    name=identifiers,
    type_name=type_names,
    index_name=st.none() | identifiers,
).map(
    lambda s: SourceDecl(s.name, s.type_name, s.index_name,
                         "String" if s.index_name else None)
)

devices = st.builds(
    DeviceDecl,
    name=upper_identifiers,
    extends=st.none(),
    attributes=st.lists(
        st.builds(AttributeDecl, name=identifiers, type_name=type_names),
        max_size=2,
        unique_by=lambda a: a.name,
    ).map(tuple),
    sources=st.lists(sources, max_size=2, unique_by=lambda s: s.name).map(
        tuple
    ),
    actions=st.lists(
        st.builds(
            ActionDecl,
            name=identifiers,
            params=st.lists(params, max_size=2,
                            unique_by=lambda p: p.name).map(tuple),
        ),
        max_size=2,
        unique_by=lambda a: a.name,
    ).map(tuple),
)

groups = st.builds(
    GroupBy,
    attribute=identifiers,
    window=st.none() | durations,
    map_type_name=st.none(),
    reduce_type_name=st.none(),
) | st.builds(
    GroupBy,
    attribute=identifiers,
    window=st.none(),
    map_type_name=type_names,
    reduce_type_name=type_names,
)

gets = st.lists(
    st.builds(GetSource, source=identifiers, device=upper_identifiers)
    | st.builds(GetContext, context=upper_identifiers),
    max_size=2,
).map(tuple)

interactions = (
    st.builds(
        WhenProvidedSource,
        source=identifiers,
        device=upper_identifiers,
        group=st.none(),
        gets=gets,
        publish=publishes,
    )
    | st.builds(
        WhenPeriodic,
        source=identifiers,
        device=upper_identifiers,
        period=durations,
        group=st.none() | groups,
        gets=gets,
        publish=publishes,
    )
    | st.builds(
        WhenProvidedContext,
        context=upper_identifiers,
        gets=gets,
        publish=publishes,
    )
    | st.just(WhenRequired())
)

contexts = st.builds(
    ContextDecl,
    name=upper_identifiers,
    type_name=type_names,
    interactions=st.lists(interactions, min_size=1, max_size=3).map(tuple),
    placement=st.none() | st.sampled_from(["edge", "cloud"]),
)

controllers = st.builds(
    ControllerDecl,
    name=upper_identifiers,
    reactions=st.lists(
        st.builds(
            ControllerReaction,
            context=upper_identifiers,
            dos=st.lists(
                st.builds(DoClause, action=identifiers,
                          device=upper_identifiers),
                min_size=1,
                max_size=2,
            ).map(tuple),
        ),
        min_size=1,
        max_size=2,
    ).map(tuple),
)

enumerations = st.builds(
    EnumerationDecl,
    name=upper_identifiers,
    members=st.lists(
        upper_identifiers, min_size=1, max_size=4, unique=True
    ).map(tuple),
)

structures = st.builds(
    StructureDecl,
    name=upper_identifiers,
    fields=st.lists(params, max_size=3, unique_by=lambda p: p.name).map(
        tuple
    ),
)

specs = st.builds(
    Spec,
    declarations=st.lists(
        devices | contexts | controllers | enumerations | structures,
        max_size=5,
        unique_by=lambda d: d.name,
    ).map(tuple),
)


@given(specs)
@settings(max_examples=120, deadline=None)
def test_roundtrip_random_specs(spec):
    assert parse(pretty(spec)) == spec


@given(specs)
@settings(max_examples=60, deadline=None)
def test_pretty_idempotent_random_specs(spec):
    once = pretty(spec)
    assert pretty(parse(once)) == once
