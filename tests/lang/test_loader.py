"""File loading and the shipped .diaspec design files."""

import os

import pytest

from repro.errors import DiaSpecSyntaxError
from repro.lang.loader import load_file, load_source
from repro.lang.parser import parse

DESIGNS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "designs")

SHIPPED = {
    "cooker_monitoring.diaspec": "repro.apps.cooker.design",
    "parking_management.diaspec": "repro.apps.parking.design",
    "automated_pilot.diaspec": "repro.apps.avionics.design",
    "homeassist.diaspec": "repro.apps.homeassist.design",
    "pollution_advisory.diaspec": "repro.apps.pollution.design",
}


class TestLoader:
    def test_load_source_is_parse(self):
        assert load_source("device D { }") == parse("device D { }")

    def test_load_file(self, tmp_path):
        path = tmp_path / "d.diaspec"
        path.write_text("device D { source s as Float; }",
                        encoding="utf-8")
        spec = load_file(path)
        assert spec.devices[0].name == "D"

    def test_load_file_accepts_str_and_pathlike(self, tmp_path):
        path = tmp_path / "d.diaspec"
        path.write_text("device D { }", encoding="utf-8")
        assert load_file(str(path)) == load_file(path)

    def test_missing_file(self):
        with pytest.raises(OSError):
            load_file("/nonexistent/of/course.diaspec")

    def test_syntax_error_propagates(self, tmp_path):
        path = tmp_path / "bad.diaspec"
        path.write_text("device {", encoding="utf-8")
        with pytest.raises(DiaSpecSyntaxError):
            load_file(path)


class TestShippedDesignFiles:
    @pytest.mark.parametrize("filename,module_name",
                             sorted(SHIPPED.items()))
    def test_file_matches_embedded_source(self, filename, module_name):
        """The .diaspec files under designs/ are the single sources of
        truth the app packages embed — they must never drift apart."""
        import importlib

        module = importlib.import_module(module_name)
        path = os.path.join(DESIGNS_DIR, filename)
        spec_from_file = load_file(path)
        assert spec_from_file == parse(module.DESIGN_SOURCE)

    @pytest.mark.parametrize("filename", sorted(SHIPPED))
    def test_file_analyzes(self, filename):
        from repro.sema.analyzer import analyze

        analyze(load_file(os.path.join(DESIGNS_DIR, filename)))
