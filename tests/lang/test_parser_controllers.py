"""Parsing controller declarations and whole-spec structure."""

import pytest

from repro.errors import DiaSpecSyntaxError
from repro.lang.ast_nodes import (
    ContextDecl,
    ControllerDecl,
    ControllerReaction,
    DeviceDecl,
    DoClause,
)
from repro.lang.parser import parse


class TestControllers:
    def test_single_reaction(self):
        spec = parse(
            "controller Notify { when provided Alert "
            "do askQuestion on TVPrompter; }"
        )
        controller = spec.controllers[0]
        assert controller == ControllerDecl(
            "Notify",
            (
                ControllerReaction(
                    "Alert", (DoClause("askQuestion", "TVPrompter"),)
                ),
            ),
        )

    def test_multiple_do_clauses_in_one_reaction(self):
        spec = parse(
            "controller C { when provided X do a on D do b on E; }"
        )
        (reaction,) = spec.controllers[0].reactions
        assert reaction.dos == (DoClause("a", "D"), DoClause("b", "E"))

    def test_multiple_reactions(self):
        spec = parse(
            "controller C { when provided X do a on D; "
            "when provided Y do b on E; }"
        )
        assert len(spec.controllers[0].reactions) == 2

    def test_reaction_without_do_rejected(self):
        with pytest.raises(DiaSpecSyntaxError, match="do"):
            parse("controller C { when provided X; }")

    def test_do_requires_on(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse("controller C { when provided X do a D; }")


class TestWholeSpec:
    def test_declaration_order_is_preserved(self):
        spec = parse(
            "device D { source s as Float; }\n"
            "context C as Float { when provided s from D always publish; }\n"
            "controller K { when provided C do a on D; }\n"
        )
        kinds = [type(d) for d in spec.declarations]
        assert kinds == [DeviceDecl, ContextDecl, ControllerDecl]

    def test_spec_accessors(self):
        spec = parse(
            "device D { }\n"
            "enumeration E { A }\n"
            "structure S { f as Integer; }\n"
            "context C as Integer { when required; }\n"
            "controller K { when provided C do a on D; }\n"
        )
        assert len(spec.devices) == 1
        assert len(spec.enumerations) == 1
        assert len(spec.structures) == 1
        assert len(spec.contexts) == 1
        assert len(spec.controllers) == 1

    def test_empty_spec(self):
        assert parse("").declarations == ()

    def test_garbage_toplevel_rejected(self):
        with pytest.raises(DiaSpecSyntaxError, match="expected"):
            parse("frobnicate X { }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse("device D { } ;")
