"""Taxonomy reuse across applications (§III)."""

import pytest

from repro.errors import DuplicateDeclarationError
from repro.runtime.app import Application
from repro.runtime.component import Context, Controller
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze
from repro.taxonomies import (
    ASSISTED_LIVING_TAXONOMY,
    SMART_CITY_TAXONOMY,
    combine,
    taxonomy_device_names,
)

COOKER_APP_FRAGMENT = """\
context CookerAlert as Integer {
    when provided tickSecond from HomeClock
    get consumption from HomeCooker
    maybe publish;
}

controller CookerNotify {
    when provided CookerAlert
    do askQuestion on HomePrompter;
}
"""

WANDERING_APP_FRAGMENT = """\
context Wandering as HomeRoomEnum {
    when provided motion from RoomMotionSensor
    maybe publish;
}

controller WanderingLight {
    when provided Wandering
    do On on RoomLamp;
}
"""

POLLUTION_APP_FRAGMENT = """\
structure ZoneAir { zone as CityZoneEnum; pm10 as Float; }

context AirQuality as ZoneAir[] {
    when periodic pm10 from PollutionSensor <10 min>
    grouped by zone
    always publish;
}

controller AirPanels {
    when provided AirQuality
    do update on ZonePanel;
}
"""


class TestTaxonomiesAnalyze:
    def test_assisted_living_taxonomy_is_valid(self):
        design = analyze(ASSISTED_LIVING_TAXONOMY)
        assert "HomeCooker" in design.devices
        assert design.devices["HomeCooker"].is_subtype_of("Appliance")

    def test_smart_city_taxonomy_is_valid(self):
        design = analyze(SMART_CITY_TAXONOMY)
        assert design.devices["ZonePanel"].is_subtype_of("CityDisplayPanel")

    def test_device_names(self):
        names = taxonomy_device_names(SMART_CITY_TAXONOMY)
        assert "PollutionSensor" in names
        assert names == sorted(names)


class TestReuseAcrossApplications:
    def test_two_apps_over_one_taxonomy(self):
        cooker = analyze(combine(ASSISTED_LIVING_TAXONOMY,
                                 COOKER_APP_FRAGMENT))
        wandering = analyze(combine(ASSISTED_LIVING_TAXONOMY,
                                    WANDERING_APP_FRAGMENT))
        # Same flattened device model in both designs.
        assert (
            set(cooker.devices["HomeCooker"].sources)
            == set(wandering.devices["HomeCooker"].sources)
        )

    def test_city_taxonomy_supports_new_domain(self):
        design = analyze(combine(SMART_CITY_TAXONOMY,
                                 POLLUTION_APP_FRAGMENT))
        assert "AirQuality" in design.contexts

    def test_duplicate_declarations_rejected(self):
        with pytest.raises(DuplicateDeclarationError):
            analyze(combine(ASSISTED_LIVING_TAXONOMY,
                            ASSISTED_LIVING_TAXONOMY))

    def test_appliance_supertype_discovery(self):
        """A safety app can watch every appliance through the supertype."""
        fragment = """
context PowerWatch as Float {
    when periodic consumption from Appliance <1 min>
    always publish;
}
"""
        design = analyze(combine(ASSISTED_LIVING_TAXONOMY, fragment))

        class PowerWatch(Context):
            def __init__(self):
                super().__init__()
                self.totals = []

            def on_periodic_consumption(self, readings, discover):
                total = sum(reading.value for reading in readings)
                self.totals.append(total)
                return total

        app = Application(design)
        watch = PowerWatch()
        app.implement("PowerWatch", watch)
        app.create_device(
            "HomeCooker", "cooker",
            CallableDriver(sources={"consumption": lambda: 1500.0}),
        )
        app.create_device(
            "Kettle", "kettle",
            CallableDriver(sources={"consumption": lambda: 2000.0}),
        )
        app.start()
        app.advance(60)
        assert watch.totals == [3500.0]


class TestTaxonomyBackedPollutionApp:
    def test_air_quality_pipeline_runs(self):
        design = analyze(combine(SMART_CITY_TAXONOMY,
                                 POLLUTION_APP_FRAGMENT))

        class AirQuality(Context):
            def on_periodic_pm10(self, by_zone, discover):
                return [
                    {"zone": zone,
                     "pm10": sum(values) / len(values)}
                    for zone, values in sorted(by_zone.items())
                ]

        class AirPanels(Controller):
            def on_air_quality(self, zones, discover):
                for record in zones:
                    discover.devices("ZonePanel").where(
                        zone=record.zone
                    ).act("update", status=f"PM10 {record.pm10:.0f}")

        statuses = {}
        app = Application(design)
        app.implement("AirQuality", AirQuality())
        app.implement("AirPanels", AirPanels())
        for zone, level in [("CENTER", 42.0), ("NORTH", 17.0)]:
            app.create_device(
                "PollutionSensor", f"pm-{zone}",
                CallableDriver(sources={"pm10": (lambda lv=level: lv),
                                        "no2": lambda: 0.0}),
                zone=zone,
            )
            app.create_device(
                "ZonePanel", f"panel-{zone}",
                CallableDriver(actions={
                    "update": (lambda status, z=zone:
                               statuses.__setitem__(z, status)),
                }),
                zone=zone,
            )
        app.start()
        app.advance(600)
        assert statuses == {"CENTER": "PM10 42", "NORTH": "PM10 17"}
