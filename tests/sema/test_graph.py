"""Dataflow graph construction, layering, cycles, functional chains."""

import pytest

from repro.errors import SccViolationError
from repro.sema.analyzer import analyze
from repro.sema.graph import EdgeKind

CHAIN = """\
device Sensor { source reading as Float; }
device Siren { action sound(level as Integer); }
context A as Float { when provided reading from Sensor always publish; }
context B as Float { when provided A always publish; }
controller K { when provided B do sound on Siren; }
"""


class TestGraphShape:
    def test_nodes_cover_all_declarations(self, parking_design):
        graph = parking_design.graph
        assert graph.nodes["PresenceSensor"] == "device"
        assert graph.nodes["ParkingAvailability"] == "context"
        assert graph.nodes["MessengerController"] == "controller"

    def test_subscribe_edges(self):
        graph = analyze(CHAIN).graph
        edges = {(e.source, e.target, e.kind) for e in graph.edges}
        assert ("Sensor", "A", EdgeKind.SUBSCRIBE) in edges
        assert ("A", "B", EdgeKind.SUBSCRIBE) in edges
        assert ("B", "K", EdgeKind.SUBSCRIBE) in edges
        assert ("K", "Siren", EdgeKind.ACT) in edges

    def test_query_edges_from_gets(self, cooker_design):
        graph = cooker_design.graph
        query_edges = [e for e in graph.edges if e.kind is EdgeKind.QUERY]
        assert any(
            e.source == "Cooker" and e.target == "Alert"
            for e in query_edges
        )

    def test_edge_facets(self):
        graph = analyze(CHAIN).graph
        source_edge = next(
            e for e in graph.edges if e.source == "Sensor"
        )
        assert source_edge.facet == "reading"
        act_edge = next(e for e in graph.edges if e.kind is EdgeKind.ACT)
        assert act_edge.facet == "sound"


class TestLayering:
    def test_chain_layers_increase(self):
        graph = analyze(CHAIN).graph
        assert graph.layers["Sensor"] == 0
        assert graph.layers["A"] == 1
        assert graph.layers["B"] == 2
        assert graph.layers["K"] == 3

    def test_parking_layers(self, parking_design):
        layers = parking_design.graph.layers
        assert layers["ParkingAvailability"] == 1
        assert layers["ParkingSuggestion"] == 2
        assert layers["CityEntrancePanelController"] == 3

    def test_context_order_respects_dependencies(self, parking_design):
        order = parking_design.graph.context_order()
        assert order.index("ParkingAvailability") < order.index(
            "ParkingSuggestion"
        )

    def test_query_dependencies_count_for_layering(self, parking_design):
        layers = parking_design.graph.layers
        # ParkingSuggestion queries ParkingUsagePattern, so it sits deeper.
        assert layers["ParkingSuggestion"] > layers["ParkingUsagePattern"]


class TestCycles:
    def test_subscription_cycle_rejected(self):
        with pytest.raises(SccViolationError, match="cycle"):
            analyze(
                "device D { source s as Float; }\n"
                "context A as Float { when provided B always publish; }\n"
                "context B as Float { when provided A always publish; }\n"
            )

    def test_self_subscription_rejected(self):
        with pytest.raises(SccViolationError, match="cycle"):
            analyze(
                "context A as Float { when provided A always publish; }"
            )

    def test_query_cycle_rejected(self):
        with pytest.raises(SccViolationError, match="cycle"):
            analyze(
                "device D { source s as Float; }\n"
                "context A as Float { when provided s from D get B "
                "always publish; when required; }\n"
                "context B as Float { when provided s from D get A "
                "always publish; when required; }\n"
            )


class TestFunctionalChains:
    def test_cooker_chains_match_figure_3(self, cooker_design):
        chains = cooker_design.graph.functional_chains()
        assert [
            "Clock",
            "Alert",
            "Notify",
            "TVPrompter",
            "RemoteTurnOff",
            "TurnOff",
            "Cooker",
        ] in chains

    def test_every_chain_starts_at_device(self, parking_design):
        graph = parking_design.graph
        for chain in graph.functional_chains():
            assert graph.nodes[chain[0]] == "device"
            assert graph.nodes[chain[-1]] == "device"

    def test_render_is_stable(self, cooker_design):
        text = cooker_design.graph.render()
        assert "context Alert" in text
        assert text == cooker_design.graph.render()


class TestGraphQueries:
    def test_successors_predecessors(self):
        graph = analyze(CHAIN).graph
        assert [e.target for e in graph.successors("A")] == ["B"]
        assert [e.source for e in graph.predecessors("K")] == ["B"]
