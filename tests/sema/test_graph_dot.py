"""Graphviz DOT rendering of the dataflow graph."""

from repro.sema.analyzer import analyze


class TestDotRendering:
    def test_valid_dot_structure(self, cooker_design):
        dot = cooker_design.graph.render_dot("cooker")
        assert dot.startswith('digraph "cooker" {')
        assert dot.rstrip().endswith("}")

    def test_nodes_have_kind_shapes(self, cooker_design):
        dot = cooker_design.graph.render_dot()
        assert '"Clock" [shape=box' in dot
        assert '"Alert" [shape=ellipse' in dot
        assert '"Notify" [shape=hexagon' in dot

    def test_edge_styles_by_kind(self, cooker_design):
        dot = cooker_design.graph.render_dot()
        assert '"Clock" -> "Alert" [style=solid, label="tickSecond"];' in dot
        assert '"Cooker" -> "Alert" [style=dashed' in dot  # query (get)
        assert '"TurnOff" -> "Cooker" [style=bold' in dot  # action

    def test_deterministic(self, parking_design):
        assert (
            parking_design.graph.render_dot()
            == parking_design.graph.render_dot()
        )

    def test_cli_dot_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "d.diaspec"
        path.write_text(
            "device D { source s as Float; }\n"
            "context C as Float { when provided s from D always publish; }\n",
            encoding="utf-8",
        )
        assert main(["graph", str(path), "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_quotes_protect_names(self):
        design = analyze("device Weird_1 { source s2 as Float; }")
        dot = design.graph.render_dot()
        assert '"Weird_1"' in dot
