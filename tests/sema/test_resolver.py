"""Name resolution: types, symbol table, device-inheritance flattening."""

import pytest

from repro.errors import (
    DuplicateDeclarationError,
    SemanticError,
    UnknownNameError,
)
from repro.lang.parser import parse
from repro.sema.resolver import build_symbols, build_types
from repro.typesys.core import EnumerationType, INTEGER


def resolve(source):
    spec = parse(source)
    types = build_types(spec)
    return build_types(spec), build_symbols(spec, types)


class TestTypeBuilding:
    def test_enumeration_registered(self):
        types = build_types(parse("enumeration E { A, B }"))
        assert types.lookup("E") == EnumerationType("E", ("A", "B"))

    def test_structure_field_types_resolved(self):
        types = build_types(
            parse(
                "enumeration E { A }\n"
                "structure S { kind as E; count as Integer; }"
            )
        )
        structure = types.lookup("S")
        assert structure.field_type("count") is INTEGER
        assert structure.field_type("kind") == EnumerationType("E", ("A",))

    def test_structure_referencing_structure(self):
        types = build_types(
            parse(
                "structure Outer { inner as Inner; }\n"
                "structure Inner { x as Integer; }"
            )
        )
        outer = types.lookup("Outer")
        assert outer.field_type("inner") == types.lookup("Inner")

    def test_structure_cycle_rejected(self):
        with pytest.raises(SemanticError, match="cycle|unknown"):
            build_types(
                parse(
                    "structure A { b as B; }\n"
                    "structure B { a as A; }"
                )
            )

    def test_structure_with_unknown_field_type(self):
        with pytest.raises(SemanticError):
            build_types(parse("structure S { x as Mystery; }"))

    def test_duplicate_structures_rejected(self):
        with pytest.raises(DuplicateDeclarationError):
            build_types(
                parse("structure S { a as Integer; }\nstructure S { }")
            )


class TestDeviceFlattening:
    HIERARCHY = """\
device DisplayPanel {
    attribute brightness as Integer;
    action update(status as String);
}
device ParkingEntrancePanel extends DisplayPanel {
    attribute location as LotEnum;
    source temperature as Float;
}
device FancyPanel extends ParkingEntrancePanel {
    action blink;
}
enumeration LotEnum { A22 }
"""

    def test_inherited_facets_present(self):
        __, table = resolve(self.HIERARCHY)
        fancy = table.device("FancyPanel")
        assert set(fancy.attributes) == {"brightness", "location"}
        assert set(fancy.actions) == {"update", "blink"}
        assert set(fancy.sources) == {"temperature"}

    def test_ancestors_nearest_first(self):
        __, table = resolve(self.HIERARCHY)
        assert table.device("FancyPanel").ancestors == (
            "ParkingEntrancePanel",
            "DisplayPanel",
        )

    def test_subtypes_recorded(self):
        __, table = resolve(self.HIERARCHY)
        assert table.device("DisplayPanel").subtypes == (
            "FancyPanel",
            "ParkingEntrancePanel",
        )

    def test_is_subtype_of(self):
        __, table = resolve(self.HIERARCHY)
        fancy = table.device("FancyPanel")
        assert fancy.is_subtype_of("DisplayPanel")
        assert fancy.is_subtype_of("FancyPanel")
        assert not table.device("DisplayPanel").is_subtype_of("FancyPanel")

    def test_declared_by_tracks_origin(self):
        __, table = resolve(self.HIERARCHY)
        fancy = table.device("FancyPanel")
        assert fancy.actions["update"].declared_by == "DisplayPanel"
        assert fancy.actions["blink"].declared_by == "FancyPanel"

    def test_unknown_parent_rejected(self):
        with pytest.raises(UnknownNameError):
            resolve("device D extends Ghost { }")

    def test_inheritance_cycle_rejected(self):
        with pytest.raises(SemanticError, match="cycle"):
            resolve(
                "device A extends B { }\ndevice B extends A { }"
            )

    def test_facet_redeclaration_rejected(self):
        with pytest.raises(DuplicateDeclarationError):
            resolve(
                "device P { action go; }\n"
                "device C extends P { action go; }"
            )


class TestUniqueness:
    def test_duplicate_toplevel_names_rejected(self):
        with pytest.raises(DuplicateDeclarationError):
            resolve("device X { }\ncontext X as Integer { when required; }")

    def test_kind_of(self):
        __, table = resolve(
            "device D { }\n"
            "context C as Integer { when required; }\n"
            "controller K { when provided C do a on D; }"
        )
        assert table.kind_of("D") == "device"
        assert table.kind_of("C") == "context"
        assert table.kind_of("K") == "controller"
        assert table.kind_of("Ghost") is None

    def test_symbol_lookups_raise_on_unknown(self):
        __, table = resolve("device D { }")
        with pytest.raises(UnknownNameError):
            table.context("Nope")
        with pytest.raises(UnknownNameError):
            table.controller("Nope")
        with pytest.raises(UnknownNameError):
            table.device("Nope")


class TestContextResolution:
    def test_result_type_resolved(self):
        __, table = resolve(
            "structure S { x as Integer; }\n"
            "context C as S[] { when required; }"
        )
        context = table.context("C")
        assert context.result_type.name == "S[]"

    def test_unknown_result_type_rejected(self):
        with pytest.raises(UnknownNameError):
            resolve("context C as Mystery { when required; }")

    def test_queryable_flag(self):
        __, table = resolve("context C as Integer { when required; }")
        assert table.context("C").is_queryable

    def test_ever_publishes(self):
        __, table = resolve(
            "device D { source s as Float; }\n"
            "context A as Float { when provided s from D always publish; }\n"
            "context B as Float { when provided s from D no publish; "
            "when required; }"
        )
        assert table.context("A").ever_publishes
        assert not table.context("B").ever_publishes
