"""End-to-end analysis of whole designs, including the paper's."""

import pytest

from repro.apps.avionics.design import DESIGN_SOURCE as AVIONICS
from repro.apps.homeassist.design import DESIGN_SOURCE as HOMEASSIST
from repro.errors import DiaSpecError
from repro.lang.parser import parse
from repro.sema.analyzer import analyze


class TestAnalyzeEntryPoints:
    def test_accepts_source_text(self):
        design = analyze("device D { }")
        assert "D" in design.devices

    def test_accepts_parsed_spec(self):
        spec = parse("device D { }")
        design = analyze(spec)
        assert design.spec is spec

    def test_syntax_error_is_diaspec_error(self):
        with pytest.raises(DiaSpecError):
            analyze("device {")

    def test_accessors(self, cooker_design):
        assert set(cooker_design.contexts) == {"Alert", "RemoteTurnOff"}
        assert set(cooker_design.controllers) == {"Notify", "TurnOff"}
        assert "Cooker" in cooker_design.devices


class TestPaperDesignsAnalyze:
    def test_cooker(self, cooker_design):
        alert = cooker_design.contexts["Alert"]
        assert alert.result_type.name == "Integer"
        assert not alert.is_queryable

    def test_parking(self, parking_design):
        availability = parking_design.contexts["ParkingAvailability"]
        assert availability.result_type.name == "Availability[]"
        usage = parking_design.contexts["ParkingUsagePattern"]
        assert usage.is_queryable
        assert not usage.ever_publishes

    def test_avionics(self):
        design = analyze(AVIONICS)
        assert len(design.contexts) == 4
        assert len(design.controllers) == 4
        assert design.report.warnings == []

    def test_homeassist(self):
        design = analyze(HOMEASSIST)
        assert design.contexts["ActivityLevel"].is_queryable
        assert design.report.warnings == []

    def test_parking_enumeration_types(self, parking_design):
        lots = parking_design.types.lookup("ParkingLotEnum")
        assert "A22" in lots
        availability = parking_design.types.lookup("Availability")
        assert availability.field_names == ("parkingLot", "count")
