"""Design-evolution diffing."""

from repro.sema.diff import diff_designs

V1 = """\
device Cooker {
    source consumption as Float;
    action Off;
}
device Clock { source tickSecond as Integer; }

context Alert as Integer {
    when provided tickSecond from Clock
    maybe publish;
}

controller TurnOff {
    when provided Alert
    do Off on Cooker;
}
"""


class TestNoChanges:
    def test_identical_designs(self):
        diff = diff_designs(V1, V1)
        assert not diff
        assert not diff.is_breaking
        assert diff.render() == "designs are structurally identical"

    def test_formatting_does_not_matter(self):
        reformatted = V1.replace("\n    ", " ").replace("{ ", "{\n")
        assert not diff_designs(V1, reformatted)


class TestCompatibleChanges:
    def test_added_device(self):
        diff = diff_designs(V1, V1 + "\ndevice Lamp { action On; }\n")
        assert not diff.is_breaking
        assert [c.subject for c in diff.compatible] == ["device Lamp"]

    def test_added_source(self):
        new = V1.replace(
            "source consumption as Float;",
            "source consumption as Float;\n    source temperature as Float;",
        )
        diff = diff_designs(V1, new)
        assert not diff.is_breaking
        (change,) = diff.changes
        assert "source 'temperature'" in change.detail

    def test_added_context(self):
        new = V1 + (
            "\ncontext Extra as Float { when provided tickSecond from "
            "Clock always publish; }\n"
        )
        diff = diff_designs(V1, new)
        assert not diff.is_breaking


class TestBreakingChanges:
    def test_removed_device(self):
        new = V1.replace(
            "device Clock { source tickSecond as Integer; }", ""
        ).replace(
            "when provided tickSecond from Clock",
            "when provided consumption from Cooker",
        )
        diff = diff_designs(V1, new)
        assert diff.is_breaking
        subjects = [c.subject for c in diff.breaking]
        assert "device Clock" in subjects

    def test_removed_action(self):
        new = V1.replace("    action Off;\n", "    action On;\n").replace(
            "do Off on Cooker", "do On on Cooker"
        )
        diff = diff_designs(V1, new)
        assert diff.is_breaking

    def test_changed_source_type(self):
        new = V1.replace("consumption as Float", "consumption as Integer")
        diff = diff_designs(V1, new)
        assert diff.is_breaking
        assert any("signature" in c.detail for c in diff.breaking)

    def test_changed_action_parameters(self):
        new = V1.replace("action Off;", "action Off(delay as Integer);")
        assert diff_designs(V1, new).is_breaking

    def test_new_attribute_is_breaking_for_deployments(self):
        new = V1.replace(
            "device Clock { source tickSecond as Integer; }",
            "device Clock { attribute room as String; "
            "source tickSecond as Integer; }",
        )
        diff = diff_designs(V1, new)
        assert diff.is_breaking
        assert any("deployments" in c.detail for c in diff.breaking)

    def test_changed_context_result_type(self):
        new = V1.replace("context Alert as Integer", "context Alert as Float")
        diff = diff_designs(V1, new)
        assert any("result type" in c.detail for c in diff.breaking)

    def test_changed_interaction_contract(self):
        new = V1.replace(
            "when provided tickSecond from Clock\n    maybe publish;",
            "when periodic tickSecond from Clock <1 s>\n    maybe publish;",
        )
        diff = diff_designs(V1, new)
        assert any("interaction contracts" in c.detail
                   for c in diff.breaking)

    def test_changed_controller_reactions(self):
        new = V1 + (
            "\ncontext Extra as Float { when provided tickSecond from "
            "Clock always publish; }\n"
        )
        new = new.replace(
            "when provided Alert\n    do Off on Cooker;",
            "when provided Extra\n    do Off on Cooker;",
        )
        diff = diff_designs(V1, new)
        assert any(c.subject == "controller TurnOff" for c in diff.breaking)


class TestRendering:
    def test_markers(self):
        new = (V1 + "\ndevice Lamp { action On; }\n").replace(
            "consumption as Float", "consumption as Integer"
        )
        rendered = diff_designs(V1, new).render()
        assert "+ added device Lamp" in rendered
        assert "! changed device Cooker" in rendered
        assert "2 change(s), 1 breaking" in rendered


class TestCliDiff:
    def test_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        old = tmp_path / "old.diaspec"
        old.write_text(V1, encoding="utf-8")
        same = tmp_path / "same.diaspec"
        same.write_text(V1, encoding="utf-8")
        broken = tmp_path / "broken.diaspec"
        broken.write_text(
            V1.replace("consumption as Float", "consumption as Integer"),
            encoding="utf-8",
        )
        assert main(["diff", str(old), str(same)]) == 0
        assert main(["diff", str(old), str(broken)]) == 3
        out = capsys.readouterr().out
        assert "breaking" in out
