"""Whole-design SCC rules and warnings (Figure 2 conformance)."""

from repro.sema.analyzer import analyze


class TestSccConformance:
    """The SCC paradigm holds structurally for every analyzed design."""

    def test_controllers_never_feed_contexts(self, parking_design):
        graph = parking_design.graph
        for edge in graph.edges:
            if graph.nodes[edge.source] == "controller":
                assert graph.nodes[edge.target] == "device"

    def test_data_flows_down_layers(self, parking_design):
        """Subscription edges never point to an equal-or-lower layer
        (acyclicity made quantitative)."""
        graph = parking_design.graph
        for edge in graph.edges:
            if (
                graph.nodes[edge.source] == "context"
                and graph.nodes[edge.target] == "context"
            ):
                assert graph.layers[edge.source] < graph.layers[edge.target]

    def test_devices_are_leaves_and_roots_only(self, cooker_design):
        graph = cooker_design.graph
        for edge in graph.edges:
            if graph.nodes[edge.source] == "device":
                assert edge.kind.value in ("subscribe", "query")
            if graph.nodes[edge.target] == "device":
                assert edge.kind.value == "act"


class TestWarnings:
    def test_clean_designs_have_no_warnings(
        self, cooker_design, parking_design
    ):
        assert cooker_design.report.warnings == []
        assert parking_design.report.warnings == []

    def test_unused_device_flagged(self):
        design = analyze(
            "device Used { source s as Float; }\n"
            "device Unused { source t as Float; }\n"
            "context C as Float { when provided s from Used "
            "always publish; }"
        )
        assert design.report.unused_devices == ["Unused"]
        assert any("Unused" in w for w in design.report.warnings)

    def test_supertype_counts_as_used_via_subtype(self):
        design = analyze(
            "device Panel { action update(status as String); }\n"
            "device LotPanel extends Panel { }\n"
            "device S { source s as Float; }\n"
            "context C as Float { when provided s from S always publish; }\n"
            "controller K { when provided C do update on LotPanel; }"
        )
        assert "Panel" not in design.report.unused_devices

    def test_unobserved_context_flagged(self):
        design = analyze(
            "device S { source s as Float; }\n"
            "context C as Float { when provided s from S always publish; }"
        )
        assert design.report.unobserved_contexts == ["C"]

    def test_queried_context_is_observed(self):
        design = analyze(
            "device S { source s as Float; }\n"
            "context A as Float { when provided s from S maybe publish; "
            "when required; }\n"
            "context B as Float { when provided s from S get A "
            "always publish; }"
        )
        assert "A" not in design.report.unobserved_contexts
        # B itself is unobserved
        assert design.report.unobserved_contexts == ["B"]

    def test_warnings_do_not_fail_analysis(self):
        design = analyze("device Lonely { }")
        assert design.report.unused_devices == ["Lonely"]
