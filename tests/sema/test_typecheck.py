"""Interaction-level semantic checks."""

import pytest

from repro.errors import SccViolationError, SemanticError, UnknownNameError
from repro.lang.ast_nodes import Publish
from repro.sema.analyzer import analyze
from repro.sema.typecheck import publish_discipline

BASE = """\
device Sensor {
    attribute zone as ZoneEnum;
    source reading as Float;
}
device Siren { action sound(level as Integer); }
enumeration ZoneEnum { NORTH, SOUTH }
"""


class TestDeviceSubscriptions:
    def test_valid_subscription_passes(self):
        analyze(
            BASE
            + "context C as Float { when provided reading from Sensor "
            "always publish; }"
        )

    def test_unknown_device(self):
        with pytest.raises(UnknownNameError, match="Ghost"):
            analyze(
                "context C as Float { when provided r from Ghost "
                "always publish; }"
            )

    def test_unknown_source_on_device(self):
        with pytest.raises(UnknownNameError, match="no source"):
            analyze(
                BASE
                + "context C as Float { when provided humidity from Sensor "
                "always publish; }"
            )

    def test_subscribing_to_controller_name_as_device(self):
        with pytest.raises(UnknownNameError):
            analyze(
                BASE
                + "context C as Float { when provided reading from K "
                "always publish; }\n"
                "controller K { when provided C do sound on Siren; }"
            )


class TestGrouping:
    def test_group_by_attribute_passes(self):
        analyze(
            BASE
            + "context C as Float { when periodic reading from Sensor "
            "<1 min> grouped by zone always publish; }"
        )

    def test_group_by_unknown_attribute(self):
        with pytest.raises(UnknownNameError, match="attribute"):
            analyze(
                BASE
                + "context C as Float { when periodic reading from Sensor "
                "<1 min> grouped by floor always publish; }"
            )

    def test_group_on_event_driven_rejected(self):
        with pytest.raises(SemanticError, match="periodic"):
            analyze(
                BASE
                + "context C as Float { when provided reading from Sensor "
                "grouped by zone always publish; }"
            )

    def test_window_shorter_than_period_rejected(self):
        with pytest.raises(SemanticError, match="shorter"):
            analyze(
                BASE
                + "context C as Float { when periodic reading from Sensor "
                "<1 hr> grouped by zone every <10 min> always publish; }"
            )

    def test_window_equal_to_period_allowed(self):
        analyze(
            BASE
            + "context C as Float { when periodic reading from Sensor "
            "<10 min> grouped by zone every <10 min> always publish; }"
        )

    def test_mapreduce_types_must_resolve(self):
        with pytest.raises(UnknownNameError):
            analyze(
                BASE
                + "context C as Float { when periodic reading from Sensor "
                "<1 min> grouped by zone with map as Ghost reduce as "
                "Integer always publish; }"
            )


class TestContextSubscriptions:
    def test_subscribe_to_publishing_context(self):
        analyze(
            BASE
            + "context A as Float { when provided reading from Sensor "
            "always publish; }\n"
            "context B as Float { when provided A always publish; }"
        )

    def test_subscribe_to_never_publishing_context_rejected(self):
        with pytest.raises(SemanticError, match="never publishes"):
            analyze(
                BASE
                + "context A as Float { when provided reading from Sensor "
                "no publish; }\n"
                "context B as Float { when provided A always publish; }"
            )

    def test_subscribe_to_controller_rejected(self):
        with pytest.raises(SccViolationError):
            analyze(
                BASE
                + "context A as Float { when provided reading from Sensor "
                "always publish; }\n"
                "controller K { when provided A do sound on Siren; }\n"
                "context B as Float { when provided K always publish; }"
            )

    def test_unknown_context(self):
        with pytest.raises(UnknownNameError):
            analyze(
                "context B as Float { when provided Ghost always publish; }"
            )


class TestGetClauses:
    def test_get_source_passes(self):
        analyze(
            BASE
            + "context C as Float { when provided reading from Sensor "
            "get reading from Sensor always publish; }"
        )

    def test_get_unknown_source(self):
        with pytest.raises(UnknownNameError):
            analyze(
                BASE
                + "context C as Float { when provided reading from Sensor "
                "get humidity from Sensor always publish; }"
            )

    def test_get_context_requires_when_required(self):
        with pytest.raises(SemanticError, match="when\\s+required|required"):
            analyze(
                BASE
                + "context A as Float { when provided reading from Sensor "
                "always publish; }\n"
                "context B as Float { when provided reading from Sensor "
                "get A always publish; }"
            )

    def test_get_queryable_context_passes(self):
        analyze(
            BASE
            + "context A as Float { when provided reading from Sensor "
            "no publish; when required; }\n"
            "context B as Float { when provided reading from Sensor "
            "get A always publish; }"
        )

    def test_get_controller_rejected(self):
        with pytest.raises(SccViolationError):
            analyze(
                BASE
                + "context A as Float { when provided reading from Sensor "
                "always publish; }\n"
                "controller K { when provided A do sound on Siren; }\n"
                "context B as Float { when provided reading from Sensor "
                "get K always publish; }"
            )


class TestControllers:
    def test_valid_controller(self):
        analyze(
            BASE
            + "context A as Float { when provided reading from Sensor "
            "always publish; }\n"
            "controller K { when provided A do sound on Siren; }"
        )

    def test_controller_subscribing_to_device_rejected(self):
        with pytest.raises(SccViolationError, match="context"):
            analyze(
                BASE
                + "controller K { when provided Sensor do sound on Siren; }"
            )

    def test_controller_on_silent_context_rejected(self):
        with pytest.raises(SemanticError, match="never publishes"):
            analyze(
                BASE
                + "context A as Float { when provided reading from Sensor "
                "no publish; }\n"
                "controller K { when provided A do sound on Siren; }"
            )

    def test_unknown_action_rejected(self):
        with pytest.raises(UnknownNameError, match="no action"):
            analyze(
                BASE
                + "context A as Float { when provided reading from Sensor "
                "always publish; }\n"
                "controller K { when provided A do explode on Siren; }"
            )

    def test_action_on_unknown_device_rejected(self):
        with pytest.raises(UnknownNameError):
            analyze(
                BASE
                + "context A as Float { when provided reading from Sensor "
                "always publish; }\n"
                "controller K { when provided A do sound on Ghost; }"
            )


class TestEmptyDeclarations:
    def test_context_without_interactions_rejected(self):
        from repro.lang.ast_nodes import ContextDecl, Spec

        with pytest.raises(SemanticError, match="interaction"):
            analyze(Spec((ContextDecl("C", "Integer", ()),)))

    def test_controller_without_reactions_rejected(self):
        from repro.lang.ast_nodes import ControllerDecl, Spec

        with pytest.raises(SemanticError, match="reaction"):
            analyze(Spec((ControllerDecl("K", ()),)))


class TestPublishDiscipline:
    def test_strongest_discipline_wins(self):
        design = analyze(
            BASE
            + "context C as Float {\n"
            "when provided reading from Sensor maybe publish;\n"
            "when periodic reading from Sensor <1 min> always publish;\n"
            "}"
        )
        assert publish_discipline(design.contexts["C"]) is Publish.ALWAYS

    def test_no_only(self):
        design = analyze(
            BASE
            + "context C as Float { when provided reading from Sensor "
            "no publish; when required; }"
        )
        assert publish_discipline(design.contexts["C"]) is Publish.NO


class TestPlacementAnnotation:
    def test_at_edge_with_mapreduce_passes(self):
        analyze(
            BASE
            + "context C as Integer at edge { "
            "when periodic reading from Sensor <1 min> grouped by zone "
            "with map as Float reduce as Integer always publish; }"
        )

    def test_at_cloud_never_constrained(self):
        analyze(
            BASE
            + "context C as Float at cloud { when provided reading from "
            "Sensor always publish; }"
        )

    def test_at_edge_without_mapreduce_rejected(self):
        with pytest.raises(SemanticError, match="at edge"):
            analyze(
                BASE
                + "context C as Float at edge { when provided reading from "
                "Sensor always publish; }"
            )

    def test_at_edge_with_plain_grouping_rejected(self):
        with pytest.raises(SemanticError, match="map"):
            analyze(
                BASE
                + "context C as Integer at edge { "
                "when periodic reading from Sensor <1 min> grouped by zone "
                "always publish; }"
            )
