"""The exception hierarchy: catchability contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_design_errors_catchable_together(self):
        assert issubclass(errors.DiaSpecSyntaxError, errors.DiaSpecError)
        assert issubclass(errors.SemanticError, errors.DiaSpecError)
        assert issubclass(errors.SccViolationError, errors.SemanticError)
        assert issubclass(errors.DuplicateDeclarationError,
                          errors.SemanticError)
        assert issubclass(errors.UnknownNameError, errors.SemanticError)
        assert issubclass(errors.TypeMismatchError, errors.SemanticError)

    def test_runtime_errors_catchable_together(self):
        for cls in (
            errors.BindingError,
            errors.DiscoveryError,
            errors.DeliveryError,
            errors.ActuationError,
            errors.DeviceFailureError,
            errors.ValueConformanceError,
        ):
            assert issubclass(cls, errors.RuntimeOrchestrationError)

    def test_runtime_and_design_errors_disjoint(self):
        assert not issubclass(errors.BindingError, errors.DiaSpecError)
        assert not issubclass(errors.SemanticError,
                              errors.RuntimeOrchestrationError)


class TestMessages:
    def test_syntax_error_carries_position(self):
        error = errors.DiaSpecSyntaxError("oops", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)
        assert "column 7" in str(error)

    def test_syntax_error_without_position(self):
        error = errors.DiaSpecSyntaxError("oops")
        assert str(error) == "oops"

    def test_semantic_error_names_declaration(self):
        error = errors.SemanticError("bad publish", declaration="Alert")
        assert error.declaration == "Alert"
        assert "'Alert'" in str(error)


class TestCatchingAtBoundaries:
    def test_one_except_covers_the_library(self):
        from repro import analyze

        with pytest.raises(errors.ReproError):
            analyze("device {")
        with pytest.raises(errors.ReproError):
            analyze("context C as Ghost { when required; }")
