"""CS1: the automated pilot over simulated flight dynamics."""

import pytest

from repro.apps.avionics import PID, build_avionics_app
from repro.simulation.environment import FlightEnvironment


@pytest.fixture
def app():
    return build_avionics_app()


class TestPid:
    def test_proportional_response(self):
        pid = PID(kp=0.5, output_limit=10.0)
        assert pid.step(4.0) == 2.0

    def test_output_clamped(self):
        pid = PID(kp=100.0, output_limit=1.0)
        assert pid.step(50.0) == 1.0
        assert pid.step(-50.0) == -1.0

    def test_integral_accumulates(self):
        pid = PID(kp=0.0, ki=1.0, dt=1.0, output_limit=100.0)
        pid.step(1.0)
        assert pid.step(1.0) > 0.0

    def test_anti_windup(self):
        pid = PID(kp=1.0, ki=1.0, output_limit=1.0)
        for __ in range(100):
            pid.step(10.0)  # saturated the whole time
        # After the error flips, output recovers quickly because the
        # integral never wound up.
        assert pid.step(-1.0) < 1.0

    def test_reset(self):
        pid = PID(kp=0.0, ki=1.0, dt=1.0, output_limit=10.0)
        pid.step(5.0)
        pid.reset()
        assert pid.step(0.0) == 0.0

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            PID(kp=1.0, output_limit=0.0)


class TestHoldLoops:
    def test_altitude_capture(self, app):
        app.command(altitude=1400.0)
        app.advance(240)
        assert app.environment.altitude == pytest.approx(1400.0, abs=40.0)

    def test_altitude_hold_is_stable(self, app):
        app.command(altitude=1200.0)
        app.advance(600)
        before = app.environment.altitude
        app.advance(120)
        assert abs(app.environment.altitude - before) < 10.0

    def test_descent(self, app):
        app.command(altitude=600.0)
        app.advance(300)
        assert app.environment.altitude == pytest.approx(600.0, abs=40.0)

    def test_heading_capture_takes_short_way_around(self, app):
        app.environment.heading = 350.0
        app.command(heading=10.0)
        app.advance(60)
        # 20 degrees via north, not 340 degrees the long way
        assert app.environment.heading == pytest.approx(10.0, abs=5.0)

    def test_airspeed_capture(self, app):
        app.command(airspeed=180.0)
        app.advance(600)
        assert app.environment.airspeed == pytest.approx(180.0, abs=10.0)

    def test_simultaneous_captures(self, app):
        app.command(altitude=1300.0, heading=45.0, airspeed=140.0)
        app.advance(600)
        assert app.environment.altitude == pytest.approx(1300.0, abs=40.0)
        assert app.environment.heading == pytest.approx(45.0, abs=5.0)
        assert app.environment.airspeed == pytest.approx(140.0, abs=10.0)

    def test_holds_under_turbulence(self):
        environment = FlightEnvironment(turbulence=0.3, seed=8)
        app = build_avionics_app(environment=environment)
        app.command(altitude=1100.0)
        app.advance(600)
        assert app.environment.altitude == pytest.approx(1100.0, abs=60.0)


class TestEnvelopeProtection:
    def test_terrain_warning(self, app):
        app.command(altitude=50.0)
        app.advance(600)
        assert any("TERRAIN" in w for w in app.annunciator.warnings)

    def test_warning_is_edge_triggered(self, app):
        app.command(altitude=50.0)
        app.advance(900)
        terrain = [w for w in app.annunciator.warnings if "TERRAIN" in w]
        assert len(terrain) <= 2  # once per excursion episode, not per tick

    def test_stall_warning(self, app):
        app.command(airspeed=30.0)
        app.advance(900)
        assert any("STALL" in w for w in app.alarms.warnings)

    def test_no_warnings_in_normal_flight(self, app):
        app.command(altitude=1200.0, airspeed=150.0)
        app.advance(600)
        assert app.annunciator.warnings == []


class TestScc:
    def test_avionics_uses_the_same_stack(self, app):
        stats = app.application.stats
        app.advance(10)
        stats = app.application.stats
        assert stats["context_activations"]["AltitudeHold"] == 10
        assert stats["controller_activations"]["ElevatorController"] == 10
