"""CS2: the assisted-living platform over the simulated home."""

import pytest

from repro.apps.homeassist import build_homeassist_app


@pytest.fixture
def app():
    return build_homeassist_app(inactivity_threshold_minutes=60)


class TestActivityLevel:
    def test_query_reflects_routine(self, app):
        app.advance(10 * 3600)  # 10:00, resident in the living room
        levels = {
            level.room: level.level
            for level in app.application.query_context("ActivityLevel")
        }
        assert levels["LIVING_ROOM"] > levels["KITCHEN"]

    def test_levels_are_floats_in_range(self, app):
        app.advance(6 * 3600)
        for level in app.application.query_context("ActivityLevel"):
            assert 0.0 <= level.level <= 1.0


class TestInactivityAlert:
    def test_no_alert_during_active_day(self, app):
        app.advance(14 * 3600)
        assert not any(
            "No activity" in message
            for __, message in app.notifications.sent
        )

    def test_alert_after_silence(self, app):
        app.advance(10 * 3600)
        app.environment.force_room("nowhere")
        app.advance(90 * 60)
        inactivity = [
            message
            for __, message in app.notifications.sent
            if "No activity" in message
        ]
        assert inactivity
        assert "60 minutes" in inactivity[0]

    def test_escalation_to_urgent(self, app):
        app.advance(10 * 3600)
        app.environment.force_room("nowhere")
        app.advance(3 * 3600)
        levels = {
            level
            for level, message in app.notifications.sent
            if "No activity" in message
        }
        assert "URGENT" in levels

    def test_night_silence_is_not_an_alert(self, app):
        app.advance(23 * 3600)  # resident asleep
        app.environment.force_room("nowhere")
        app.advance(4 * 3600)  # dead of night
        assert not any(
            "No activity" in message
            for __, message in app.notifications.sent
        )


class TestNightWandering:
    def test_lamp_follows_wanderer(self, app):
        app.advance(int(23.5 * 3600))
        app.environment.force_room("hallway")
        app.advance(300)
        assert app.lamp("HALLWAY").is_on

    def test_daytime_movement_is_ignored(self, app):
        app.advance(12 * 3600)
        assert app.night_light.lit_rooms == []

    def test_bedroom_movement_at_night_is_ignored(self, app):
        app.advance(int(23.5 * 3600))
        app.advance(1800)  # routine keeps resident in the bedroom
        assert "BEDROOM" not in app.night_light.lit_rooms


class TestDoorLeftOpen:
    def test_open_door_alert(self, app):
        app.advance(9 * 3600)
        app.front_door.set_open(True)
        app.advance(20 * 60)
        assert any(
            "FRONT door" in message
            for __, message in app.notifications.sent
        )

    def test_closed_door_resets(self, app):
        app.advance(9 * 3600)
        app.front_door.set_open(True)
        app.advance(10 * 60)
        app.front_door.set_open(False)
        app.advance(3600)
        assert not any(
            "door" in message for __, message in app.notifications.sent
        )

    def test_alert_fires_once_per_episode(self, app):
        app.advance(9 * 3600)
        app.back_door.set_open(True)
        app.advance(2 * 3600)
        door_alerts = [
            message
            for __, message in app.notifications.sent
            if "BACK door" in message
        ]
        assert len(door_alerts) == 1
