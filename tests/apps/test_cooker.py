"""F3/F7: the cooker monitoring application end to end (Figures 3, 5, 7)."""

import pytest

from repro.apps.cooker import build_cooker_app
from repro.runtime.clock import SimulationClock


@pytest.fixture
def app():
    return build_cooker_app(threshold_seconds=120, renotify_seconds=60)


class TestFirstFunctionalChain:
    """Clock → Alert → Notify → TVPrompter (right side of Figure 3)."""

    def test_alert_fires_after_threshold(self, app):
        app.environment.set_cooker(True)
        app.advance(119)
        assert app.prompter_driver.pending_questions == []
        app.advance(1)
        assert len(app.prompter_driver.pending_questions) == 1

    def test_no_alert_when_cooker_off(self, app):
        app.environment.set_cooker(False)
        app.advance(3600)
        assert app.prompter_driver.displayed == []

    def test_alert_counter_resets_when_cooker_turns_off(self, app):
        app.environment.set_cooker(True)
        app.advance(60)
        app.environment.set_cooker(False)
        app.advance(60)
        app.environment.set_cooker(True)
        app.advance(100)
        assert app.prompter_driver.displayed == []

    def test_renotification_cadence(self, app):
        app.environment.set_cooker(True)
        app.advance(120 + 60 + 60)
        assert len(app.prompter_driver.displayed) == 3

    def test_question_mentions_duration(self, app):
        app.environment.set_cooker(True)
        app.advance(120)
        (question_id, text) = app.prompter_driver.displayed[0]
        assert "2 minutes" in text


class TestSecondFunctionalChain:
    """TVPrompter → RemoteTurnOff → TurnOff → Cooker (left of Figure 3)."""

    def test_yes_turns_cooker_off(self, app):
        app.environment.set_cooker(True)
        app.advance(120)
        app.prompter_driver.answer("yes")
        assert not app.cooker_on
        assert app.turn_off.turn_offs == 1

    def test_no_keeps_cooker_on(self, app):
        app.environment.set_cooker(True)
        app.advance(120)
        app.prompter_driver.answer("no")
        assert app.cooker_on
        assert app.turn_off.turn_offs == 0

    def test_yes_variants_accepted(self, app):
        app.environment.set_cooker(True)
        app.advance(120)
        app.prompter_driver.answer("  OK ")
        assert not app.cooker_on

    def test_answer_checks_cooker_still_on(self, app):
        """The paper: RemoteTurnOff re-queries consumption 'to ensure that
        the cooker is still on before turning it off'."""
        app.environment.set_cooker(True)
        app.advance(120)
        app.environment.set_cooker(False)  # user turned it off manually
        app.prompter_driver.answer("yes")
        assert app.turn_off.turn_offs == 0

    def test_answers_are_indexed_by_question(self, app):
        app.environment.set_cooker(True)
        app.advance(120)
        (question_id, __) = app.prompter_driver.displayed[0]
        assert question_id == "q1"
        app.prompter_driver.answer("yes", question_id=question_id)
        assert app.prompter_driver.pending_questions == []


class TestDailyRoutineScenario:
    def test_normal_cooking_does_not_alert(self):
        """Routine meals are shorter than the default 20-minute threshold
        only if the threshold exceeds the meal; with the paper-realistic
        one-hour meals we expect alerts unless the resident turns it off.
        Here: a high threshold never alerts during a normal day."""
        app = build_cooker_app(threshold_seconds=2 * 3600)
        app.advance(24 * 3600)
        assert app.prompter_driver.displayed == []

    def test_forgotten_cooker_scenario(self):
        clock = SimulationClock()
        app = build_cooker_app(clock=clock, threshold_seconds=1200)
        # Breakfast starts at 07:00; the resident forgets the cooker.
        app.environment.set_cooker(True)
        app.advance(7 * 3600 + 1200)
        assert app.prompter_driver.pending_questions
        app.prompter_driver.answer("yes")
        assert not app.cooker_on

    def test_stats_expose_activity(self, app):
        app.environment.set_cooker(True)
        app.advance(120)
        stats = app.application.stats
        assert stats["context_activations"]["Alert"] == 120
        assert stats["controller_activations"]["Notify"] == 1
