"""F4/F8/F10/F11: the parking management application end to end."""

import pytest

from repro.apps.parking import (
    ParkingAvailabilityContext,
    build_parking_app,
)
from repro.mapreduce.engine import ThreadExecutor


@pytest.fixture
def app():
    return build_parking_app(
        capacities={"A22": 10, "B16": 5, "D6": 8}, seed=11
    )


class TestParkingAvailability:
    """Figure 10: MapReduce counts free spaces per lot every 10 minutes."""

    def test_counts_match_environment(self, app):
        app.advance(600)
        for lot, panel in app.entrance_panels.items():
            free = app.environment.free_count(lot)
            assert panel.status in (f"FREE: {free}", "FULL")

    def test_panels_update_each_period(self, app):
        app.advance(3600)
        for panel in app.entrance_panels.values():
            assert len(panel.history) == 6

    def test_full_lot_displays_full(self):
        # Freeze the environment (huge step) so the forced state holds
        # through the first gathering sweep.
        app = build_parking_app(
            capacities={"A22": 3}, seed=1,
            environment_step_seconds=10_000.0,
        )
        for space in range(3):
            app.environment.force("A22", space, True)
        app.advance(600)
        assert app.entrance_panels["A22"].status == "FULL"

    def test_mapreduce_context_standalone(self):
        """The Figure 10 phases, called directly."""
        from repro.mapreduce.api import MapCollector, ReduceCollector

        context = ParkingAvailabilityContext()
        collector = MapCollector()
        context.map("A22", False, collector)
        context.map("A22", True, collector)
        assert collector.pairs == [("A22", 1)]
        reducer = ReduceCollector()
        context.reduce("A22", [1, 1, 1], reducer)
        assert reducer.pairs == [("A22", 3)]

    def test_mapreduce_combine_standalone(self):
        """The combiner is a mini-reduce: partial sums per map chunk."""
        from repro.mapreduce.api import CombineCollector, ReduceCollector

        context = ParkingAvailabilityContext()
        combiner = CombineCollector()
        context.combine("A22", [1, 1], combiner)
        assert combiner.pairs == [("A22", 2)]
        reducer = ReduceCollector()
        context.reduce("A22", [2, 1], reducer)
        assert reducer.pairs == [("A22", 3)]


class TestParkingSuggestion:
    def test_city_panels_show_ranked_lots(self, app):
        app.advance(600)
        for panel in app.city_panels.values():
            assert panel.status.startswith("Parking: ")

    def test_suggestions_prefer_free_lots(self):
        app = build_parking_app(
            capacities={"A22": 10, "B16": 10}, seed=2
        )
        for space in range(10):
            app.environment.force("B16", space, True)
        app.advance(600)
        status = next(iter(app.city_panels.values())).status
        assert status.split()[1] == "A22"

    def test_usage_patterns_feed_suggestions(self, app):
        app.advance(2 * 3600)
        patterns = app.application.query_context("ParkingUsagePattern")
        assert {p.parkingLot for p in patterns} == {"A22", "B16", "D6"}
        assert all(p.level in ("HIGH", "MODERATE", "LOW") for p in patterns)


class TestAverageOccupancy:
    def test_daily_report_after_window(self):
        app = build_parking_app(
            capacities={"A22": 6, "B16": 4},
            occupancy_window="1 hr",
            seed=3,
        )
        app.advance(3600)
        assert len(app.messenger.messages) == 1
        message = app.messenger.messages[0]
        assert message.startswith("24h occupancy:")
        assert "A22=" in message and "B16=" in message

    def test_no_report_before_window(self, app):
        app.advance(12 * 3600)
        assert app.messenger.messages == []

    def test_occupancy_values_bounded(self):
        app = build_parking_app(
            capacities={"A22": 6}, occupancy_window="1 hr", seed=4
        )
        app.advance(2 * 3600)
        for message in app.messenger.messages:
            percent = float(message.split("=")[1].rstrip("%"))
            assert 0.0 <= percent <= 100.0


class TestScaleContinuum:
    """Figure 1: the same design runs at any infrastructure size."""

    def test_paper_scale(self):
        app = build_parking_app(seed=5)
        assert app.sensor_count == 120

    def test_city_scale(self):
        capacities = {f"LOT_{i:03d}": 20 for i in range(50)}
        app = build_parking_app(capacities=capacities, seed=6)
        assert app.sensor_count == 1000
        app.advance(600)
        assert all(
            panel.history for panel in app.entrance_panels.values()
        )

    def test_thread_executor_produces_same_panels(self):
        serial = build_parking_app(
            capacities={"A22": 20, "B16": 20}, seed=7
        )
        threaded = build_parking_app(
            capacities={"A22": 20, "B16": 20},
            seed=7,
            mapreduce_executor=ThreadExecutor(workers=4),
        )
        serial.advance(600)
        threaded.advance(600)
        assert {
            lot: panel.status for lot, panel in serial.entrance_panels.items()
        } == {
            lot: panel.status
            for lot, panel in threaded.entrance_panels.items()
        }


class TestDeploymentDetails:
    def test_sensor_attributes_registered(self, app):
        sensor = app.application.registry.get("sensor-A22-0000")
        assert sensor.attributes == {"parkingLot": "A22"}

    def test_panel_discovery_by_location(self, app):
        panels = app.application.discover.parking_entrance_panels()
        assert len(panels) == 3
        assert len(panels.where_location("B16")) == 1

    def test_supertype_discovery_spans_panel_kinds(self, app):
        panels = app.application.discover.display_panels()
        assert len(panels) == 3 + 2  # entrance + city panels

    def test_design_warnings_empty(self, app):
        assert app.application.design.report.warnings == []


class TestDescriptorShardedDeployment:
    """The descriptor's ``topology.shard`` section runs the same
    deployment process-sharded, byte-identical to single-process."""

    CAPACITIES = {"A22": 6, "B16": 5}

    def run_deployment(self, shard):
        from repro.apps.parking.app import (
            build_sharded_parking_app,
            parking_descriptor,
        )

        descriptor = parking_descriptor(
            capacities=self.CAPACITIES, shard=shard
        )
        runtime = build_sharded_parking_app(descriptor, seed=3)
        published = []
        for name in runtime.app.design.contexts:
            runtime.app.bus.subscribe(
                ("context", name),
                lambda event, name=name: published.append(
                    (name, repr(event.value))
                ),
            )
        try:
            runtime.advance(1800.0)
            panel = runtime.app.registry.get("panel-A22").driver
            return {
                "published": published,
                "panel": list(panel.history),
                "read": runtime.query("sensor-A22-0000", "presence"),
            }
        finally:
            runtime.stop()

    def test_sharded_matches_single_process(self):
        single = self.run_deployment(None)
        sharded = self.run_deployment(
            {"workers": 2, "wire_format": "columnar", "delta_sync": True}
        )
        assert sharded == single
        assert single["panel"]  # the run actually drove the panels

    def test_descriptor_without_shard_stays_single_process(self):
        from repro.apps.parking.app import (
            build_sharded_parking_app,
            parking_descriptor,
        )

        runtime = build_sharded_parking_app(
            parking_descriptor(capacities=self.CAPACITIES)
        )
        try:
            assert runtime.sharded is False
            assert runtime.worker_stats() == []
        finally:
            runtime.stop()
