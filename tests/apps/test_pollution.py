"""The pollution-advisory application (taxonomy-backed city app)."""

import pytest

from repro.apps.pollution import (
    CityAirEnvironment,
    build_pollution_app,
)


@pytest.fixture
def app():
    return build_pollution_app(seed=5)


class TestEnvironment:
    def test_pollution_follows_traffic(self, clock):
        env = CityAirEnvironment({"CENTER": 1.0, "WEST": 0.2},
                                 step_seconds=300.0, seed=1)
        env.attach(clock)
        clock.advance(10 * 3600)  # through the morning rush
        assert env.pm10_level("CENTER") > env.pm10_level("WEST")
        assert env.traffic("CENTER") > env.traffic("WEST")

    def test_pollution_decays_at_night(self, clock):
        env = CityAirEnvironment({"CENTER": 1.0}, step_seconds=300.0,
                                 noise=0.0)
        env.attach(clock)
        clock.advance(10 * 3600)
        rush = env.pm10_level("CENTER")
        clock.advance(16 * 3600)  # to 02:00
        assert env.pm10_level("CENTER") < rush

    def test_requires_zones(self):
        with pytest.raises(ValueError):
            CityAirEnvironment({})

    def test_force_pollution(self):
        env = CityAirEnvironment({"CENTER": 1.0})
        env.force_pollution("CENTER", pm10=99.0, no2=88.0)
        assert env.pm10_level("CENTER") == 99.0
        assert env.no2_level("CENTER") == 88.0


class TestPipelines:
    def test_traffic_level_published(self, app):
        app.advance(600)
        stats = app.application.stats
        assert stats["context_activations"]["TrafficLevel"] == 1
        assert stats["context_activations"]["PollutionAdvisory"] == 1

    def test_air_quality_query(self, app):
        app.advance(1200)
        records = app.application.query_context("AirQuality")
        zones = [record.zone for record in records]
        assert zones == sorted(app.zone_panels)
        for record in records:
            assert record.pm10 > 0.0
            assert record.no2 > 0.0

    def test_clean_morning_no_advisory(self, app):
        app.advance(3 * 3600)  # 03:00, little traffic, clean air
        assert app.advisories_sent == []

    def test_rush_hour_produces_advisory_in_center(self):
        app = build_pollution_app(seed=7, environment_step_seconds=300.0)
        app.advance(10 * 3600)  # through the 09:00 rush
        assert app.advisories_sent
        assert any("CENTER" in message for message in app.advisories_sent)

    def test_zone_panels_show_status(self):
        app = build_pollution_app(seed=7, environment_step_seconds=300.0)
        app.advance(10 * 3600)
        center = app.zone_panels["CENTER"].status
        west = app.zone_panels["WEST"].status
        assert center.startswith("CENTER:")
        assert west == "Air quality: OK"

    def test_forced_episode_flags_specific_zone(self, app):
        app.advance(600)
        app.environment.force_pollution("EAST", pm10=120.0)
        app.environment.noise = 0.0
        # freeze environment evolution so the forced level survives
        app.environment.detach()
        app.advance(600)
        assert app.zone_panels["EAST"].status.startswith("EAST: PM10")

    def test_advisory_mentions_both_pollutants(self, app):
        app.advance(600)
        # High enough that the EWMA crosses both limits within two sweeps.
        app.environment.force_pollution("NORTH", pm10=300.0, no2=200.0)
        app.environment.detach()
        app.advance(1200)
        status = app.zone_panels["NORTH"].status
        assert "PM10" in status and "NO2" in status


class TestTaxonomyIntegration:
    def test_design_includes_taxonomy_devices(self, app):
        design = app.application.design
        assert "TrafficCounter" in design.devices
        assert design.devices["ZonePanel"].is_subtype_of("CityDisplayPanel")

    def test_unknown_zone_rejected(self):
        with pytest.raises(ValueError, match="CityZoneEnum"):
            build_pollution_app(zone_factors={"MIDTOWN": 1.0})

    def test_only_taxonomy_reuse_warnings(self, app):
        """The application uses a subset of the shared taxonomy, so the
        only acceptable warnings are unused *taxonomy* devices (the paper
        treats such spare vocabulary as normal, §III)."""
        warnings = app.application.design.report.warnings
        assert all("CityPresenceSensor" in warning for warning in warnings)
