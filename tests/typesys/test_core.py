"""Unit tests for the DiaSpec type model."""

import pytest

from repro.errors import DuplicateDeclarationError, UnknownNameError
from repro.typesys.core import (
    ArrayType,
    BOOLEAN,
    EnumerationType,
    FLOAT,
    INTEGER,
    PRIMITIVES,
    STRING,
    StructureType,
    TypeEnvironment,
    parse_type_name,
)


class TestPrimitives:
    def test_four_primitives_exist(self):
        assert set(PRIMITIVES) == {"Integer", "Float", "Boolean", "String"}

    def test_primitives_compare_structurally(self):
        assert INTEGER == PRIMITIVES["Integer"]
        assert INTEGER != FLOAT

    def test_str(self):
        assert str(BOOLEAN) == "Boolean"


class TestEnumerationType:
    def test_membership(self):
        lots = EnumerationType("LotEnum", ("A22", "B16"))
        assert "A22" in lots
        assert "Z99" not in lots

    def test_duplicate_member_rejected(self):
        with pytest.raises(DuplicateDeclarationError):
            EnumerationType("E", ("A", "A"))

    def test_structural_equality(self):
        a = EnumerationType("E", ("X", "Y"))
        b = EnumerationType("E", ("X", "Y"))
        assert a == b


class TestStructureType:
    def test_field_type_lookup(self):
        availability = StructureType(
            "Availability", (("parkingLot", STRING), ("count", INTEGER))
        )
        assert availability.field_type("count") is INTEGER
        assert availability.field_names == ("parkingLot", "count")

    def test_unknown_field(self):
        structure = StructureType("S", (("a", INTEGER),))
        with pytest.raises(UnknownNameError):
            structure.field_type("b")

    def test_duplicate_field_rejected(self):
        with pytest.raises(DuplicateDeclarationError):
            StructureType("S", (("a", INTEGER), ("a", FLOAT)))


class TestArrayType:
    def test_name_derivation(self):
        assert ArrayType(INTEGER).name == "Integer[]"
        assert ArrayType(ArrayType(FLOAT)).name == "Float[][]"

    def test_equality(self):
        assert ArrayType(INTEGER) == ArrayType(INTEGER)
        assert ArrayType(INTEGER) != ArrayType(FLOAT)


class TestTypeEnvironment:
    def test_primitives_preloaded(self):
        env = TypeEnvironment()
        assert env.lookup("Float") is FLOAT

    def test_declare_and_lookup(self):
        env = TypeEnvironment()
        lots = EnumerationType("LotEnum", ("A",))
        env.declare(lots)
        assert env.lookup("LotEnum") == lots

    def test_array_lookup(self):
        env = TypeEnvironment()
        assert env.lookup("Integer[]") == ArrayType(INTEGER)

    def test_nested_array_lookup(self):
        env = TypeEnvironment()
        assert env.lookup("Integer[][]") == ArrayType(ArrayType(INTEGER))

    def test_unknown_type(self):
        env = TypeEnvironment()
        with pytest.raises(UnknownNameError):
            env.lookup("Mystery")

    def test_redeclaration_rejected(self):
        env = TypeEnvironment()
        env.declare(EnumerationType("E", ("A",)))
        with pytest.raises(DuplicateDeclarationError):
            env.declare(EnumerationType("E", ("B",)))

    def test_cannot_shadow_primitive(self):
        env = TypeEnvironment()
        with pytest.raises(DuplicateDeclarationError):
            env.declare(EnumerationType("Integer", ("A",)))

    def test_contains_and_get(self):
        env = TypeEnvironment()
        assert "Integer" in env
        assert "Nope" not in env
        assert env.get("Nope") is None


class TestParseTypeName:
    def test_scalar(self):
        assert parse_type_name("Foo") == ("Foo", 0)

    def test_array_depth(self):
        assert parse_type_name("Foo[][]") == ("Foo", 2)
