"""Runtime value conformance, including property-based checks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValueConformanceError
from repro.typesys.core import (
    ArrayType,
    BOOLEAN,
    EnumerationType,
    FLOAT,
    INTEGER,
    STRING,
    StructureType,
)
from repro.typesys.values import StructureValue, check_value, coerce_value

LOTS = EnumerationType("LotEnum", ("A22", "B16", "D6"))
AVAILABILITY = StructureType(
    "Availability", (("parkingLot", LOTS), ("count", INTEGER))
)


class TestPrimitiveChecks:
    def test_integer_accepts_int(self):
        assert check_value(INTEGER, 5) == 5

    def test_integer_rejects_bool(self):
        with pytest.raises(ValueConformanceError):
            check_value(INTEGER, True)

    def test_integer_rejects_float(self):
        with pytest.raises(ValueConformanceError):
            check_value(INTEGER, 5.0)

    def test_float_accepts_int_and_float(self):
        assert check_value(FLOAT, 2) == 2
        assert check_value(FLOAT, 2.5) == 2.5

    def test_float_rejects_bool(self):
        with pytest.raises(ValueConformanceError):
            check_value(FLOAT, True)

    def test_boolean_strictness(self):
        assert check_value(BOOLEAN, False) is False
        with pytest.raises(ValueConformanceError):
            check_value(BOOLEAN, 1)

    def test_string(self):
        assert check_value(STRING, "hi") == "hi"
        with pytest.raises(ValueConformanceError):
            check_value(STRING, b"hi")


class TestEnumerationChecks:
    def test_member_passes(self):
        assert check_value(LOTS, "A22") == "A22"

    def test_non_member_rejected(self):
        with pytest.raises(ValueConformanceError, match="LotEnum"):
            check_value(LOTS, "Z99")


class TestStructureChecks:
    def test_mapping_promoted_to_structure_value(self):
        value = check_value(AVAILABILITY, {"parkingLot": "A22", "count": 3})
        assert isinstance(value, StructureValue)
        assert value.parkingLot == "A22"
        assert value.count == 3

    def test_structure_value_passes_through(self):
        original = StructureValue(AVAILABILITY, parkingLot="B16", count=0)
        assert check_value(AVAILABILITY, original) is original

    def test_missing_field_rejected(self):
        with pytest.raises(ValueConformanceError, match="missing"):
            check_value(AVAILABILITY, {"parkingLot": "A22"})

    def test_extra_field_rejected(self):
        with pytest.raises(ValueConformanceError, match="unknown"):
            check_value(
                AVAILABILITY,
                {"parkingLot": "A22", "count": 1, "bogus": 2},
            )

    def test_field_type_enforced(self):
        with pytest.raises(ValueConformanceError):
            check_value(AVAILABILITY, {"parkingLot": "A22", "count": "3"})

    def test_as_dict_object_promoted(self):
        class Record:
            def as_dict(self):
                return {"parkingLot": "D6", "count": 7}

        value = check_value(AVAILABILITY, Record())
        assert value.count == 7

    def test_non_structure_rejected(self):
        with pytest.raises(ValueConformanceError):
            check_value(AVAILABILITY, 42)


class TestArrayChecks:
    def test_list_of_scalars(self):
        assert check_value(ArrayType(INTEGER), [1, 2, 3]) == [1, 2, 3]

    def test_tuple_accepted(self):
        assert check_value(ArrayType(INTEGER), (1, 2)) == [1, 2]

    def test_element_violation_rejected(self):
        with pytest.raises(ValueConformanceError):
            check_value(ArrayType(INTEGER), [1, "2"])

    def test_array_of_structures(self):
        values = check_value(
            ArrayType(AVAILABILITY),
            [{"parkingLot": "A22", "count": 1}],
        )
        assert values[0].parkingLot == "A22"

    def test_scalar_rejected_for_array(self):
        with pytest.raises(ValueConformanceError):
            check_value(ArrayType(INTEGER), 1)


class TestCoercion:
    def test_int_widens_to_float(self):
        assert coerce_value(FLOAT, 3) == 3.0
        assert isinstance(coerce_value(FLOAT, 3), float)

    def test_bool_does_not_widen(self):
        with pytest.raises(ValueConformanceError):
            coerce_value(FLOAT, True)


class TestStructureValueSemantics:
    def test_immutability(self):
        value = StructureValue(AVAILABILITY, parkingLot="A22", count=1)
        with pytest.raises(AttributeError):
            value.count = 2

    def test_equality_and_hash(self):
        a = StructureValue(AVAILABILITY, parkingLot="A22", count=1)
        b = StructureValue(AVAILABILITY, parkingLot="A22", count=1)
        c = StructureValue(AVAILABILITY, parkingLot="A22", count=2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_fields(self):
        value = StructureValue(AVAILABILITY, parkingLot="A22", count=1)
        assert "parkingLot" in repr(value)

    def test_as_dict(self):
        value = StructureValue(AVAILABILITY, parkingLot="A22", count=1)
        assert value.as_dict() == {"parkingLot": "A22", "count": 1}


# ---------------------------------------------------------------------------
# Property-based conformance
# ---------------------------------------------------------------------------


@given(st.integers())
def test_any_int_is_integer(value):
    assert check_value(INTEGER, value) == value


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_any_float_is_float(value):
    assert check_value(FLOAT, value) == value


@given(st.lists(st.booleans()))
def test_boolean_arrays(values):
    assert check_value(ArrayType(BOOLEAN), values) == values


@given(
    st.lists(
        st.one_of(st.integers(), st.text(), st.booleans(), st.none()),
        min_size=1,
    )
)
def test_mixed_garbage_never_passes_string_silently(values):
    """Every element either passes as String or raises — no silent drops."""
    array_type = ArrayType(STRING)
    if all(isinstance(v, str) for v in values):
        assert check_value(array_type, values) == values
    else:
        with pytest.raises(ValueConformanceError):
            check_value(array_type, values)
