"""Partitioning helpers, with property-based invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.partition import (
    group_pairs,
    hash_partition,
    partition_items,
    stable_hash,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("A22") == stable_hash("A22")

    def test_non_negative(self):
        assert stable_hash("x") >= 0
        assert stable_hash(("t", 1)) >= 0


class TestHashPartition:
    def test_same_key_same_bucket(self):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("a", 5)]
        buckets = hash_partition(pairs, 3)
        locations = {}
        for index, bucket in enumerate(buckets):
            for key, __ in bucket:
                locations.setdefault(key, set()).add(index)
        assert all(len(where) == 1 for where in locations.values())

    def test_partition_count(self):
        assert len(hash_partition([("a", 1)], 5)) == 5

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            hash_partition([], 0)


class TestPartitionItems:
    def test_balanced_split(self):
        chunks = partition_items(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]

    def test_fewer_items_than_chunks(self):
        chunks = partition_items([1, 2], 5)
        assert [len(c) for c in chunks] == [1, 1]

    def test_empty(self):
        assert partition_items([], 4) == []

    def test_invalid_chunks(self):
        with pytest.raises(ValueError):
            partition_items([1], 0)


class TestGroupPairs:
    def test_grouping_preserves_order(self):
        grouped = group_pairs([("a", 1), ("b", 2), ("a", 3)])
        assert grouped == {"a": [1, 3], "b": [2]}


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

pairs_strategy = st.lists(
    st.tuples(st.text(max_size=4), st.integers()), max_size=80
)


@given(pairs_strategy, st.integers(min_value=1, max_value=16))
def test_hash_partition_loses_nothing(pairs, partitions):
    buckets = hash_partition(pairs, partitions)
    flattened = [pair for bucket in buckets for pair in bucket]
    assert sorted(map(repr, flattened)) == sorted(map(repr, pairs))


@given(
    st.lists(st.integers(), max_size=100),
    st.integers(min_value=1, max_value=12),
)
def test_partition_items_concatenates_to_input(items, chunks):
    split = partition_items(items, chunks)
    assert [x for chunk in split for x in chunk] == items
    if items:
        sizes = [len(chunk) for chunk in split]
        assert max(sizes) - min(sizes) <= 1
