"""The map-side combine hook: equivalence, shuffle savings, stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.api import (
    CombineCollector,
    MapReduce,
    job_combiner,
)
from repro.mapreduce.engine import (
    MapReduceEngine,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    run_mapreduce,
)


class PlainSum(MapReduce):
    """Associative job without a combiner (the shuffle-heavy baseline)."""

    def map(self, key, value, collector):
        collector.emit_map(key, value)

    def reduce(self, key, values, collector):
        collector.emit_reduce(key, sum(values))


class CombiningSum(PlainSum):
    """Same job with map-side partial sums."""

    def combine(self, key, values, collector):
        collector.emit_combine(key, sum(values))


class CombiningFreeSpaceCounter(MapReduce):
    """Figure 10's job in combinable form: 1 per free space, sum twice."""

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, 1)

    def combine(self, lot, counts, collector):
        collector.emit_combine(lot, sum(counts))

    def reduce(self, lot, counts, collector):
        collector.emit_reduce(lot, sum(counts))


GROUPED = {
    "A22": [1, 2, 3, 4],
    "B16": [10, 20],
    "D6": [7],
}

EXECUTORS = [
    lambda: SerialExecutor(),
    lambda: ThreadExecutor(2),
    lambda: ThreadExecutor(7),
    lambda: ProcessExecutor(2),
]


class TestCombinerDetection:
    def test_base_class_has_no_combiner(self):
        assert job_combiner(MapReduce()) is None
        assert job_combiner(PlainSum()) is None

    def test_subclass_combiner_is_detected(self):
        assert job_combiner(CombiningSum()) is not None

    def test_duck_typed_combiner_is_detected(self):
        class Duck:
            def map(self, key, value, collector):
                collector.emit_map(key, value)

            def reduce(self, key, values, collector):
                collector.emit_reduce(key, sum(values))

            def combine(self, key, values, collector):
                collector.emit_combine(key, sum(values))

        assert job_combiner(Duck()) is not None


class TestExecutorEquivalenceWithCombine:
    @pytest.mark.parametrize("make_executor", EXECUTORS)
    def test_combined_matches_plain(self, make_executor):
        plain = run_mapreduce(PlainSum(), GROUPED, make_executor())
        combined = run_mapreduce(CombiningSum(), GROUPED, make_executor())
        assert plain == combined == {"A22": 10, "B16": 30, "D6": 7}

    @pytest.mark.parametrize("make_executor", EXECUTORS)
    def test_free_space_counter(self, make_executor):
        grouped = {
            "A22": [True, False, False],
            "B16": [True, True],
            "D6": [False],
        }
        result = run_mapreduce(
            CombiningFreeSpaceCounter(), grouped, make_executor()
        )
        assert result == {"A22": 2, "D6": 1}

    def test_empty_input_with_combiner(self):
        for make_executor in EXECUTORS:
            assert run_mapreduce(CombiningSum(), {}, make_executor()) == {}


class TestShuffleStats:
    def test_serial_stats_without_combiner(self):
        engine = MapReduceEngine(SerialExecutor())
        engine.run(PlainSum(), GROUPED)
        stats = engine.last_stats
        assert stats == {
            "mapped": 7,
            "shuffled": 7,
            "reduced": 3,
            "combine_used": False,
        }

    def test_serial_combiner_shuffles_one_pair_per_group(self):
        engine = MapReduceEngine(SerialExecutor())
        engine.run(CombiningSum(), GROUPED)
        stats = engine.last_stats
        assert stats["mapped"] == 7
        assert stats["shuffled"] == 3  # one partial per group
        assert stats["combine_used"] is True

    def test_pooled_combiner_shuffles_at_most_chunks_x_groups(self):
        executor = ThreadExecutor(2)
        executor.run(CombiningSum(), GROUPED)
        stats = executor.last_stats
        assert stats["mapped"] == 7
        assert stats["shuffled"] <= 2 * 3
        assert stats["shuffled"] < stats["mapped"]

    def test_empty_run_resets_stats(self):
        executor = ThreadExecutor(2)
        executor.run(CombiningSum(), GROUPED)
        executor.run(CombiningSum(), {})
        assert executor.last_stats["shuffled"] == 0

    def test_engine_stats_are_a_snapshot(self):
        engine = MapReduceEngine(SerialExecutor())
        engine.run(PlainSum(), GROUPED)
        snapshot = engine.last_stats
        snapshot["shuffled"] = -1
        assert engine.last_stats["shuffled"] == 7


class TestCombineCollector:
    def test_emit_combine_accumulates(self):
        collector = CombineCollector()
        collector.emit_combine("k", 5)
        collector.emit_combine("k", 6)
        assert collector.pairs == [("k", 5), ("k", 6)]


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=3),
        st.lists(st.integers(min_value=-1000, max_value=1000), max_size=12),
        max_size=8,
    ),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_combiner_never_changes_results(grouped, workers):
    """Combine on/off and serial/threaded all agree, for any input."""
    baseline = run_mapreduce(PlainSum(), grouped)
    for job in (PlainSum(), CombiningSum()):
        for executor in (SerialExecutor(), ThreadExecutor(workers)):
            assert run_mapreduce(job, grouped, executor) == baseline
