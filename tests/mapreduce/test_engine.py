"""The MapReduce engine: correctness and executor equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.api import MapCollector, MapReduce, ReduceCollector
from repro.mapreduce.engine import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    run_mapreduce,
)


class FreeSpaceCounter(MapReduce):
    """The exact job of Figure 10: count False readings per lot."""

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, True)

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, len(values))


class WordLength(MapReduce):
    """Re-keys intermediate pairs: length buckets instead of input keys."""

    def map(self, key, word, collector):
        collector.emit_map(len(word), word)

    def reduce(self, length, words, collector):
        collector.emit_reduce(length, sorted(words))


class SumJob(MapReduce):
    def map(self, key, value, collector):
        collector.emit_map(key, value)

    def reduce(self, key, values, collector):
        collector.emit_reduce(key, sum(values))


GROUPED = {
    "A22": [True, False, False],
    "B16": [True, True],
    "D6": [False],
}


class TestSerialExecution:
    def test_figure_10_job(self):
        assert run_mapreduce(FreeSpaceCounter(), GROUPED) == {
            "A22": 2,
            "D6": 1,
        }

    def test_rekeying_job(self):
        grouped = {"x": ["a", "bb", "cc"], "y": ["ddd"]}
        assert run_mapreduce(WordLength(), grouped) == {
            1: ["a"],
            2: ["bb", "cc"],
            3: ["ddd"],
        }

    def test_empty_input(self):
        assert run_mapreduce(SumJob(), {}) == {}

    def test_empty_groups(self):
        assert run_mapreduce(SumJob(), {"a": []}) == {}

    def test_identity_default_phases(self):
        grouped = {"a": [1, 2], "b": [3]}
        assert run_mapreduce(MapReduce(), grouped) == {
            "a": [1, 2],
            "b": [3],
        }


class TestCollectors:
    def test_map_collector_accumulates(self):
        collector = MapCollector()
        collector.emit_map("k", 1)
        collector.emit_map("k", 2)
        assert collector.pairs == [("k", 1), ("k", 2)]

    def test_reduce_collector_accumulates(self):
        collector = ReduceCollector()
        collector.emit_reduce("k", 3)
        assert collector.pairs == [("k", 3)]


class TestExecutorEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_thread_matches_serial(self, workers):
        serial = run_mapreduce(FreeSpaceCounter(), GROUPED)
        threaded = run_mapreduce(
            FreeSpaceCounter(), GROUPED, ThreadExecutor(workers)
        )
        assert serial == threaded

    def test_process_matches_serial(self):
        serial = run_mapreduce(SumJob(), GROUPED)
        multiprocess = run_mapreduce(
            SumJob(), GROUPED, ProcessExecutor(workers=2)
        )
        assert serial == multiprocess

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)

    def test_serial_executor_workers_attribute(self):
        assert SerialExecutor().workers == 1


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=3),
        st.lists(st.integers(min_value=-1000, max_value=1000), max_size=10),
        max_size=8,
    ),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_thread_executor_always_matches_serial(grouped, workers):
    serial = run_mapreduce(SumJob(), grouped)
    threaded = run_mapreduce(SumJob(), grouped, ThreadExecutor(workers))
    assert serial == threaded


@given(
    st.dictionaries(
        st.sampled_from(["A", "B", "C", "D"]),
        st.lists(st.booleans(), max_size=20),
        max_size=4,
    )
)
@settings(max_examples=40, deadline=None)
def test_free_space_counts_match_direct_computation(grouped):
    result = run_mapreduce(FreeSpaceCounter(), grouped)
    for lot, readings in grouped.items():
        free = sum(1 for r in readings if not r)
        if free:
            assert result[lot] == free
        else:
            assert lot not in result
