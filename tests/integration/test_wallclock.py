"""Real-time execution: the same application over a WallClock.

The simulation clock is the default for tests, but deployments run in
real time; this exercises the full stack (periodic gathering, event
dispatch, actuation) with threading.Timer-driven scheduling.  Timings
are kept loose to stay robust on slow CI machines.
"""

import time

from repro.runtime.app import Application
from repro.runtime.config import RuntimeConfig
from repro.runtime.clock import WallClock
from repro.runtime.component import Context, Controller
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor { source reading as Float; }
device Horn { action honk(level as Integer); }

context Sweep as Float {
    when periodic reading from Sensor <20 ms>
    always publish;
}

controller K {
    when provided Sweep
    do honk on Horn;
}
"""


class SweepImpl(Context):
    def on_periodic_reading(self, readings, discover):
        return sum(reading.value for reading in readings)


class KImpl(Controller):
    def on_sweep(self, total, discover):
        discover.devices("Horn").act("honk", level=int(total))


def test_periodic_pipeline_under_wall_clock():
    clock = WallClock()
    app = Application(analyze(DESIGN), RuntimeConfig(clock=clock))
    app.implement("Sweep", SweepImpl())
    app.implement("K", KImpl())
    honks = []
    app.create_device(
        "Sensor", "s1", CallableDriver(sources={"reading": lambda: 2.0})
    )
    app.create_device(
        "Horn", "h1",
        CallableDriver(actions={"honk": lambda level: honks.append(level)}),
    )
    app.start()
    deadline = time.monotonic() + 5.0
    while len(honks) < 3 and time.monotonic() < deadline:
        time.sleep(0.01)
    app.stop()
    clock.shutdown()
    assert len(honks) >= 3
    assert all(level == 2 for level in honks)
    resting = len(honks)
    time.sleep(0.1)
    assert len(honks) == resting  # stop() really cancelled the schedule


def test_event_dispatch_under_wall_clock():
    clock = WallClock()
    app = Application(analyze(DESIGN), RuntimeConfig(clock=clock))
    app.implement("Sweep", SweepImpl())
    app.implement("K", KImpl())
    sensor = app.create_device(
        "Sensor", "s1", CallableDriver(sources={"reading": lambda: 1.0})
    )
    app.create_device(
        "Horn", "h1", CallableDriver(actions={"honk": lambda level: None})
    )
    app.start()
    # Event-driven delivery is synchronous regardless of the clock.
    before = app.stats["bus"]["published"]
    sensor.publish("reading", 5.0)
    assert app.stats["bus"]["published"] > before
    app.stop()
    clock.shutdown()
