"""F1: the small-to-large continuum (Figure 1).

One stack — language, analyzer, runtime — serves a 3-device home, a
thousand-sensor city, an aircraft, and an assisted-living platform; and
the same large-scale design runs unchanged at any infrastructure size.
"""

from repro.apps.avionics import build_avionics_app
from repro.apps.cooker import build_cooker_app
from repro.apps.homeassist import build_homeassist_app
from repro.apps.parking import build_parking_app


class TestOneStackManyScales:
    def test_all_four_apps_share_the_runtime(self):
        from repro.runtime.app import Application

        apps = [
            build_cooker_app(),
            build_parking_app(capacities={"A22": 5}),
            build_avionics_app(),
            build_homeassist_app(),
        ]
        for bundle in apps:
            assert isinstance(bundle.application, Application)
            assert bundle.application.started

    def test_entity_counts_span_orders_of_magnitude(self):
        small = build_cooker_app()
        large = build_parking_app(
            capacities={f"L{i}": 50 for i in range(20)}
        )
        small_entities = len(small.application.registry)
        large_entities = len(large.application.registry)
        assert small_entities <= 5
        assert large_entities >= 1000

    def test_same_parking_design_small_and_large(self):
        """The design text differs only in the generated lot enumeration;
        contexts, controllers and implementations are identical."""
        small = build_parking_app(capacities={"A22": 4}, seed=1)
        large = build_parking_app(
            capacities={f"L{i:02d}": 25 for i in range(40)}, seed=1
        )
        assert set(small.application.design.contexts) == set(
            large.application.design.contexts
        )
        small.advance(600)
        large.advance(600)
        assert small.entrance_panels["A22"].history
        assert all(p.history for p in large.entrance_panels.values())

    def test_sweep_cost_grows_with_scale_not_design(self):
        """Gathering touches every bound sensor; the design stays O(1)."""
        sizes = [10, 100, 400]
        sweeps = []
        for size in sizes:
            app = build_parking_app(capacities={"X": size}, seed=2)
            app.advance(600)
            sweeps.append(app.application.stats["gather_sweeps"])
        assert sweeps[0] == sweeps[1] == sweeps[2]


class TestCrossAppIsolation:
    def test_two_apps_do_not_interfere(self):
        from repro.runtime.clock import SimulationClock

        clock = SimulationClock()
        cooker = build_cooker_app(clock=clock, threshold_seconds=120)
        parking = build_parking_app(clock=clock, capacities={"A22": 5})
        cooker.environment.set_cooker(True)
        clock.advance(600)
        assert cooker.prompter_driver.displayed
        assert parking.entrance_panels["A22"].history
        # registries are disjoint
        assert len(cooker.application.registry) == 3
        # 5 sensors + 1 entrance panel + 2 city panels + 1 messenger
        assert len(parking.application.registry) == 9
