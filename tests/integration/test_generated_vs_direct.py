"""Equivalence of the two execution paths.

The paper's workflow compiles a design into a framework and subclasses
it; the library also supports implementing against the runtime directly.
Both paths must produce identical behaviour for the same design and the
same logic.
"""

import pytest

from repro.codegen.framework_gen import compile_design
from repro.runtime.app import Application
from repro.runtime.component import Context, Controller
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor {
    attribute zone as ZoneEnum;
    source level as Float;
}
device Pump { action run(seconds as Integer); }
enumeration ZoneEnum { EAST, WEST }

context ZoneLevels as Float {
    when periodic level from Sensor <5 min>
    grouped by zone
    with map as Float reduce as Float
    always publish;
}

controller Irrigation {
    when provided ZoneLevels
    do run on Pump;
}
"""


def drive(app, pump_log, readings):
    for (zone, values) in readings.items():
        for index, value in enumerate(values):
            app.create_device(
                "Sensor",
                f"{zone}-{index}",
                CallableDriver(sources={"level": (lambda v=value: v)}),
                zone=zone,
            )
    app.create_device(
        "Pump",
        "pump",
        CallableDriver(actions={"run": lambda seconds: pump_log.append(
            seconds)}),
    )
    app.start()
    app.advance(300)


READINGS = {"EAST": [0.2, 0.4], "WEST": [0.9, 0.7, 0.8]}


def direct_path():
    class ZoneLevels(Context):
        def map(self, zone, level, collector):
            collector.emit_map(zone, level)

        def reduce(self, zone, levels, collector):
            collector.emit_reduce(zone, sum(levels) / len(levels))

        def on_periodic_level(self, by_zone, discover):
            return min(by_zone.values())

    class Irrigation(Controller):
        def on_zone_levels(self, driest, discover):
            discover.devices("Pump").act(
                "run", seconds=int((1.0 - driest) * 100)
            )

    app = Application(analyze(DESIGN))
    app.implement("ZoneLevels", ZoneLevels())
    app.implement("Irrigation", Irrigation())
    log = []
    drive(app, log, READINGS)
    return log


def generated_path():
    mod = compile_design(DESIGN, "Irrigation")

    class ZoneLevels(mod.AbstractZoneLevels):
        def map(self, zone, level, collector):
            collector.emit_map(zone, level)

        def reduce(self, zone, levels, collector):
            collector.emit_reduce(zone, sum(levels) / len(levels))

        def on_periodic_level(self, level_by_zone, discover):
            return min(level_by_zone.values())

    class Irrigation(mod.AbstractIrrigation):
        def on_zone_levels(self, driest, discover):
            self.do_run_on_pump(seconds=int((1.0 - driest) * 100))

    framework = mod.IrrigationFramework()
    framework.implement_zone_levels(ZoneLevels())
    framework.implement_irrigation(Irrigation())
    log = []
    drive(framework.application, log, READINGS)
    return log


class TestPathEquivalence:
    def test_identical_actuations(self):
        assert direct_path() == generated_path()

    def test_expected_value(self):
        (seconds,) = direct_path()
        # EAST average = 0.3 is the driest zone -> 70 seconds
        assert seconds == 70


class TestGeneratedFrameworkReusesRuntimeTypes:
    def test_generated_module_reanalyzes_same_design(self):
        mod = compile_design(DESIGN, "Irrigation")
        direct = analyze(DESIGN)
        assert set(mod.DESIGN.contexts) == set(direct.contexts)
        assert (
            mod.DESIGN.graph.render() == direct.graph.render()
        )

    def test_framework_application_is_standard(self):
        mod = compile_design(DESIGN, "Irrigation")
        framework = mod.IrrigationFramework()
        assert isinstance(framework.application, Application)

    def test_framework_query_helpers_absent_without_when_required(self):
        mod = compile_design(DESIGN, "Irrigation")
        framework = mod.IrrigationFramework()
        assert not hasattr(framework, "query_zone_levels")

    def test_conformance_rejection_is_typeerror(self):
        mod = compile_design(DESIGN, "Irrigation")

        class Rogue(Context):
            pass

        with pytest.raises(TypeError):
            mod.IrrigationFramework().implement("ZoneLevels", Rogue())
