"""Dynamic infrastructure scenarios across the bundled applications."""

from repro.apps.avionics import AltimeterDriver, build_avionics_app
from repro.apps.parking import (
    DisplayPanelDriver,
    PresenceSensorDriver,
    build_parking_app,
)


class TestAvionicsSensorRedundancy:
    """Replicated sensors vote by averaging; losing one degrades
    gracefully (the dependability posture of the avionics case study)."""

    def test_triplex_altimeters_agree(self):
        app = build_avionics_app()
        # Add two more altimeters reading the same environment.
        for index in (2, 3):
            app.application.create_device(
                "Altimeter", f"alt-{index}",
                AltimeterDriver(app.environment),
            )
        app.command(altitude=1400.0)
        app.advance(300)
        assert abs(app.environment.altitude - 1400.0) < 40.0

    def test_altimeter_failure_is_masked(self):
        app = build_avionics_app()
        for index in (2, 3):
            app.application.create_device(
                "Altimeter", f"alt-{index}",
                AltimeterDriver(app.environment),
            )
        app.application.registry.get("alt-2").fail()
        app.command(altitude=1300.0)
        app.advance(300)
        # Two healthy altimeters keep the loop closed.
        assert abs(app.environment.altitude - 1300.0) < 40.0

    def test_all_sensors_lost_holds_last_command(self):
        app = build_avionics_app()
        app.command(altitude=1200.0)
        app.advance(240)
        app.application.registry.get("alt-1").fail()
        before = app.environment.altitude
        app.advance(60)
        # The hold context publishes a neutral command on empty sweeps;
        # the aircraft drifts but does not diverge wildly in a minute.
        assert abs(app.environment.altitude - before) < 100.0


class TestParkingRuntimeExpansion:
    """A new lot comes online while the city application is running —
    runtime entity binding at application scale (§IV.1)."""

    def test_new_lot_joins_availability_reports(self):
        app = build_parking_app(
            capacities={"A22": 10, "B16": 10}, seed=41,
            environment_step_seconds=100_000.0,  # freeze churn
            extra_lots=("D6",),  # declared in the vocabulary, not deployed
        )
        app.advance(600)
        assert "D6" not in app.entrance_panels

        # Commission lot D6 at runtime: environment capacity, sensors,
        # panel.  (The design's enumeration already contains D6 —
        # deployments grow within the declared vocabulary.)
        application = app.application
        app.environment.lots["D6"] = 5
        app.environment._occupied["D6"] = [False] * 5
        app.environment.pressure["D6"] = 1.0
        for space in range(5):
            application.create_device(
                "PresenceSensor",
                f"sensor-D6-{space:04d}",
                PresenceSensorDriver(app.environment, "D6", space),
                parkingLot="D6",
            )
        panel = DisplayPanelDriver()
        application.create_device(
            "ParkingEntrancePanel", "panel-D6", panel, location="D6"
        )

        app.advance(600)
        assert panel.status == "FREE: 5"
        # The suggestion panels now rank three lots.
        city_status = next(iter(app.city_panels.values())).status
        assert "D6" in city_status

    def test_decommissioned_lot_disappears(self):
        app = build_parking_app(
            capacities={"A22": 5, "B16": 5}, seed=42,
            environment_step_seconds=100_000.0,
        )
        app.advance(600)
        for space in range(5):
            app.application.unbind_device(f"sensor-B16-{space:04d}")
        app.advance(600)
        # B16 contributed no readings this sweep: its panel keeps the
        # stale status but availability no longer reports it.
        availability = app.implementations["ParkingAvailability"]
        del availability
        city_status = next(iter(app.city_panels.values())).status
        assert "B16" not in city_status
