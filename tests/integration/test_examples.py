"""Every bundled example runs cleanly (their asserts are their checks)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def example_env():
    """Subprocess environment with the repo's ``src`` on PYTHONPATH, so
    examples resolve ``repro`` without an installed package."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        SRC_DIR + os.pathsep + existing if existing else SRC_DIR
    )
    return env

EXAMPLES = [
    "quickstart.py",
    "cooker_monitoring.py",
    "parking_management.py",
    "avionics_autopilot.py",
    "homeassist_day.py",
    "generate_framework.py",
    "city_air.py",
    "traced_deployment.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    assert os.path.exists(path), f"example {script} is missing"
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=240,
        cwd=tmp_path,  # examples must not depend on the repo cwd
        env=example_env(),
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
