"""C6: the dependability dimension — applications under failures and
lossy networks (the paper's §VI future-work directions, built out)."""

from repro.apps.parking import build_parking_app
from repro.runtime.clock import SimulationClock
from repro.simulation.faults import FaultInjector


class TestParkingUnderSensorFailures:
    def test_pipeline_survives_failures(self):
        app = build_parking_app(
            capacities={"A22": 30, "B16": 30}, seed=21
        )
        injector = FaultInjector(
            app.application.registry,
            app.application.clock,
            mtbf_seconds=3600.0,
            mttr_seconds=1800.0,
            device_type="PresenceSensor",
            seed=22,
        ).start()
        app.advance(12 * 3600)
        # panels kept updating every period despite failures
        for panel in app.entrance_panels.values():
            assert len(panel.history) == 72
        assert injector.failures > 0

    def test_counts_degrade_gracefully(self):
        """With half the sensors down, reported free counts can only be
        lower or equal — failed sensors are masked, never misread."""
        app = build_parking_app(
            capacities={"A22": 20}, seed=23,
            environment_step_seconds=100_000.0,
        )
        app.advance(600)
        baseline = int(app.entrance_panels["A22"].status.split(": ")[1])
        for index in range(0, 20, 2):
            app.application.registry.get(f"sensor-A22-{index:04d}").fail()
        app.advance(600)
        degraded_status = app.entrance_panels["A22"].status
        degraded = (
            0
            if degraded_status == "FULL"
            else int(degraded_status.split(": ")[1])
        )
        assert degraded <= baseline

    def test_availability_ratio_tracks_mtbf(self):
        """Shorter MTBF → more downtime (ablation of the failure model)."""
        def downtime(mtbf):
            clock = SimulationClock()
            app = build_parking_app(
                capacities={"A22": 40}, clock=clock, seed=24
            )
            injector = FaultInjector(
                app.application.registry,
                clock,
                mtbf_seconds=mtbf,
                mttr_seconds=600.0,
                device_type="PresenceSensor",
                seed=25,
            ).start()
            app.advance(24 * 3600)
            return injector.total_downtime

        assert downtime(1800.0) > downtime(36000.0)


class TestCookerOverLossyNetwork:
    def test_event_chain_with_latency(self):
        from repro.apps.cooker.design import get_design
        from repro.apps.cooker.devices import CookerDriver, TVPrompterDriver
        from repro.apps.cooker.logic import (
            AlertContext,
            NotifyController,
            RemoteTurnOffContext,
            TurnOffController,
        )
        from repro.runtime.app import Application
        from repro.runtime.config import RuntimeConfig
        from repro.runtime.placement import NetworkConfig
        from repro.simulation.environment import HomeEnvironment
        from repro.simulation.sensors import ClockDeviceDriver

        clock = SimulationClock()
        app = Application(
            get_design(),
            RuntimeConfig(
                clock=clock, network=NetworkConfig(latency=2.0, seed=1)
            ),
        )
        app.implement("Alert", AlertContext(threshold_seconds=10))
        app.implement("Notify", NotifyController())
        app.implement("RemoteTurnOff", RemoteTurnOffContext())
        app.implement("TurnOff", TurnOffController())
        environment = HomeEnvironment()
        prompter = TVPrompterDriver()
        clock_driver = ClockDeviceDriver()
        app.create_device("Cooker", "c", CookerDriver(environment))
        app.create_device("TVPrompter", "tv", prompter)
        app.create_device("Clock", "clk", clock_driver)
        environment.set_cooker(True)
        clock_driver.start(clock)
        app.start()
        clock.advance(15)
        assert prompter.displayed  # alert got through, delayed
        prompter.answer("yes")
        assert environment.cooker_on  # answer still in flight
        clock.advance(2.0)
        assert not environment.cooker_on

    def test_periodic_gathering_immune_to_event_loss(self):
        from repro.runtime.config import RuntimeConfig
        from repro.runtime.placement import NetworkConfig

        app = build_parking_app(
            capacities={"A22": 10},
            seed=26,
            config=RuntimeConfig(network=NetworkConfig(loss=0.9, seed=2)),
        )
        app.advance(600)
        assert app.entrance_panels["A22"].history  # polling, not events
