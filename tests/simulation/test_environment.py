"""Simulated environments: parking lots, homes, flight dynamics."""

import pytest

from repro.runtime.clock import SimulationClock
from repro.simulation.environment import (
    Environment,
    FlightEnvironment,
    HomeEnvironment,
    ParkingLotEnvironment,
)


class TestEnvironmentBase:
    def test_attach_steps_with_clock(self, clock):
        env = Environment(step_seconds=10.0)
        env.attach(clock)
        clock.advance(35.0)
        assert env.steps == 3

    def test_double_attach_rejected(self, clock):
        env = Environment()
        env.attach(clock)
        with pytest.raises(RuntimeError):
            env.attach(clock)

    def test_detach_stops_stepping(self, clock):
        env = Environment(step_seconds=10.0)
        env.attach(clock)
        clock.advance(10.0)
        env.detach()
        clock.advance(100.0)
        assert env.steps == 1

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            Environment(step_seconds=0)


class TestParkingLotEnvironment:
    def test_initially_empty(self):
        env = ParkingLotEnvironment({"A": 10})
        assert env.occupancy("A") == 0.0
        assert env.free_count("A") == 10

    def test_occupancy_rises_during_day(self, clock):
        env = ParkingLotEnvironment({"A": 100}, step_seconds=600.0, seed=1)
        env.attach(clock)
        clock.advance(9 * 3600.0)  # into the morning rush
        assert env.occupancy("A") > 0.3

    def test_occupancy_bounded(self, clock):
        env = ParkingLotEnvironment(
            {"A": 50}, step_seconds=600.0, pressure={"A": 5.0}, seed=2
        )
        env.attach(clock)
        clock.advance(12 * 3600.0)
        assert 0.0 <= env.occupancy("A") <= 1.0

    def test_per_space_sensing(self, clock):
        env = ParkingLotEnvironment({"A": 5}, seed=3)
        env.force("A", 2, True)
        assert env.is_occupied("A", 2)
        assert not env.is_occupied("A", 0)

    def test_determinism(self):
        def run():
            clock = SimulationClock()
            env = ParkingLotEnvironment({"A": 30, "B": 20},
                                        step_seconds=600.0, seed=9)
            env.attach(clock)
            clock.advance(6 * 3600.0)
            return (env.occupancy("A"), env.occupancy("B"))

        assert run() == run()

    def test_requires_lots(self):
        with pytest.raises(ValueError):
            ParkingLotEnvironment({})


class TestHomeEnvironment:
    def test_routine_drives_location(self, clock):
        env = HomeEnvironment(step_seconds=60.0)
        env.attach(clock)
        clock.advance(7.5 * 3600.0)  # breakfast time
        assert env.current_room == "kitchen"
        assert env.cooker_on
        assert env.consumption() == 1500.0

    def test_cooker_off_outside_meals(self, clock):
        env = HomeEnvironment(step_seconds=60.0)
        env.attach(clock)
        clock.advance(10 * 3600.0)
        assert not env.cooker_on
        assert env.consumption() == 0.0

    def test_actuation_overrides_routine(self, clock):
        env = HomeEnvironment(step_seconds=60.0)
        env.attach(clock)
        env.set_cooker(True)
        clock.advance(10 * 3600.0)
        assert env.cooker_on  # override holds
        env.release_cooker()
        clock.advance(60.0)
        assert not env.cooker_on  # routine resumes

    def test_presence_per_room(self, clock):
        env = HomeEnvironment(step_seconds=60.0)
        env.attach(clock)
        clock.advance(9 * 3600.0)
        assert env.presence("living_room")
        assert not env.presence("kitchen")

    def test_force_room(self, clock):
        env = HomeEnvironment(step_seconds=60.0)
        env.attach(clock)
        env.force_room("hallway")
        clock.advance(3600.0)
        assert env.current_room == "hallway"
        env.force_room(None)
        clock.advance(9 * 3600.0)
        assert env.current_room != "hallway"


class TestFlightEnvironment:
    def test_level_flight_without_inputs(self, clock):
        env = FlightEnvironment(altitude=1000.0, step_seconds=1.0)
        env.set_throttle(120.0 / 250.0)
        env.attach(clock)
        clock.advance(60.0)
        assert env.altitude == pytest.approx(1000.0, abs=1.0)

    def test_elevator_climbs(self, clock):
        env = FlightEnvironment(altitude=1000.0)
        env.attach(clock)
        env.set_elevator(1.0)
        clock.advance(30.0)
        assert env.altitude > 1100.0

    def test_throttle_converges_airspeed(self, clock):
        env = FlightEnvironment(airspeed=120.0, max_airspeed=250.0)
        env.attach(clock)
        env.set_throttle(1.0)
        clock.advance(120.0)
        assert env.airspeed > 200.0

    def test_aileron_turns(self, clock):
        env = FlightEnvironment(heading=0.0)
        env.attach(clock)
        env.set_aileron(0.5)
        clock.advance(60.0)
        assert env.heading == pytest.approx(90.0, abs=1.0)

    def test_heading_wraps(self, clock):
        env = FlightEnvironment(heading=350.0)
        env.attach(clock)
        env.set_aileron(1.0)
        clock.advance(10.0)
        assert 0.0 <= env.heading < 360.0

    def test_actuator_clamping(self):
        env = FlightEnvironment()
        env.set_elevator(5.0)
        assert env.elevator == 1.0
        env.set_throttle(-1.0)
        assert env.throttle == 0.0
        env.set_aileron(-9.0)
        assert env.aileron == -1.0

    def test_altitude_floor(self, clock):
        env = FlightEnvironment(altitude=5.0)
        env.attach(clock)
        env.set_elevator(-1.0)
        clock.advance(30.0)
        assert env.altitude == 0.0

    def test_turbulence_is_seeded(self):
        def run():
            clock = SimulationClock()
            env = FlightEnvironment(turbulence=0.5, seed=4)
            env.attach(clock)
            clock.advance(60.0)
            return env.altitude

        assert run() == run()
