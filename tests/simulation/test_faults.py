"""Failure injection and the runtime's failure masking (C6)."""

import pytest

from repro.runtime.app import Application
from repro.runtime.component import Context
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze
from repro.simulation.faults import FaultInjector

DESIGN = """\
device Sensor { source reading as Float; }
context Sweep as Integer {
    when periodic reading from Sensor <1 min>
    always publish;
}
"""


class SweepImpl(Context):
    def __init__(self):
        super().__init__()
        self.sizes = []

    def on_periodic_reading(self, readings, discover):
        self.sizes.append(len(readings))
        return len(readings)


def build(sensors=10):
    app = Application(analyze(DESIGN))
    sweep = SweepImpl()
    app.implement("Sweep", sweep)
    for index in range(sensors):
        app.create_device(
            "Sensor",
            f"s{index}",
            CallableDriver(sources={"reading": lambda: 1.0}),
        )
    app.start()
    return app, sweep


class TestFaultInjector:
    def test_devices_fail_and_recover(self):
        app, sweep = build(sensors=20)
        injector = FaultInjector(
            app.registry, app.clock,
            mtbf_seconds=600.0, mttr_seconds=300.0, seed=1,
        ).start()
        app.advance(4 * 3600.0)
        assert injector.failures > 0
        assert injector.recoveries > 0
        assert injector.total_downtime > 0.0

    def test_failed_devices_masked_from_gathering(self):
        app, sweep = build(sensors=10)
        injector = FaultInjector(
            app.registry, app.clock,
            mtbf_seconds=300.0, mttr_seconds=3000.0, seed=2,
        ).start()
        app.advance(3600.0)
        assert min(sweep.sizes) < 10  # some sweeps saw fewer sensors
        assert injector.stats["currently_failed"] > 0

    def test_application_survives_total_failure(self):
        app, sweep = build(sensors=3)
        for instance in list(app.registry):
            instance.fail()
        app.advance(120.0)
        assert sweep.sizes[-1] == 0  # empty sweep, no crash

    def test_recovered_devices_rejoin(self):
        app, sweep = build(sensors=5)
        victim = app.registry.get("s0")
        victim.fail()
        app.advance(60.0)
        victim.recover()
        app.advance(60.0)
        assert sweep.sizes == [4, 5]

    def test_stats_accounting(self):
        app, __ = build(sensors=50)
        injector = FaultInjector(
            app.registry, app.clock,
            mtbf_seconds=1000.0, mttr_seconds=100.0, seed=3,
        ).start()
        app.advance(8 * 3600.0)
        stats = injector.stats
        assert stats["failures"] >= stats["recoveries"]
        assert stats["failures"] - stats["recoveries"] == stats[
            "currently_failed"
        ]

    def test_device_type_filter(self):
        design = analyze(
            "device A { source x as Float; }\n"
            "device B { source y as Float; }\n"
            "context C as Integer { when periodic x from A <1 min> "
            "always publish; }"
        )
        class XSweep(Context):
            def on_periodic_x(self, readings, discover):
                return len(readings)

        app = Application(design)
        app.implement("C", XSweep())
        app.create_device("A", "a1",
                          CallableDriver(sources={"x": lambda: 0.0}))
        app.create_device("B", "b1",
                          CallableDriver(sources={"y": lambda: 0.0}))
        app.start()
        injector = FaultInjector(
            app.registry, app.clock,
            mtbf_seconds=1.0, mttr_seconds=1e9,
            device_type="A", seed=4,
        ).start()
        app.advance(600.0)
        assert app.registry.get("a1").failed
        assert not app.registry.get("b1").failed

    def test_validation(self, clock):
        from repro.runtime.registry import EntityRegistry

        with pytest.raises(ValueError):
            FaultInjector(EntityRegistry(), clock, 0.0, 1.0)

    def test_stop_cancels_pending_failures(self):
        app, __ = build(sensors=10)
        injector = FaultInjector(
            app.registry, app.clock,
            mtbf_seconds=100.0, mttr_seconds=100.0, seed=5,
        ).start()
        injector.stop()
        app.advance(3600.0)
        assert injector.failures == 0

    def test_double_start_rejected(self):
        app, __ = build(sensors=1)
        injector = FaultInjector(
            app.registry, app.clock, 100.0, 100.0
        ).start()
        with pytest.raises(RuntimeError):
            injector.start()
