"""Synthetic workload generators."""

import pytest

from repro.simulation.traces import (
    bernoulli_field,
    daily_demand,
    grouped_bernoulli,
    occupancy_trace,
    poisson_arrivals,
)


class TestDailyDemand:
    def test_bounded(self):
        for hour in range(24):
            demand = daily_demand(hour * 3600.0)
            assert 0.0 <= demand <= 1.0

    def test_rush_hours_peak(self):
        morning = daily_demand(9 * 3600.0)
        night = daily_demand(3 * 3600.0)
        assert morning > night

    def test_periodic_over_days(self):
        assert daily_demand(9 * 3600.0) == pytest.approx(
            daily_demand(9 * 3600.0 + 86400.0)
        )


class TestPoissonArrivals:
    def test_all_within_duration(self):
        arrivals = poisson_arrivals(0.1, 1000.0, seed=1)
        assert all(0 <= t < 1000.0 for t in arrivals)

    def test_sorted(self):
        arrivals = poisson_arrivals(0.5, 500.0, seed=2)
        assert arrivals == sorted(arrivals)

    def test_rate_controls_count(self):
        low = len(poisson_arrivals(0.01, 10000.0, seed=3))
        high = len(poisson_arrivals(0.1, 10000.0, seed=3))
        assert high > low

    def test_zero_rate(self):
        assert poisson_arrivals(0.0, 100.0) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals(-1.0, 10.0)

    def test_deterministic_under_seed(self):
        assert poisson_arrivals(0.2, 100.0, seed=7) == poisson_arrivals(
            0.2, 100.0, seed=7
        )


class TestOccupancyTrace:
    def test_shape(self):
        trace = occupancy_trace(spaces=20, duration_seconds=3600.0,
                                step_seconds=600.0, seed=1)
        assert len(trace) == 6
        assert all(len(snapshot) == 20 for snapshot in trace)

    def test_determinism(self):
        a = occupancy_trace(10, 3600.0, seed=5)
        b = occupancy_trace(10, 3600.0, seed=5)
        assert a == b

    def test_daytime_busier_than_night(self):
        trace = occupancy_trace(
            spaces=100, duration_seconds=86400.0, step_seconds=600.0, seed=2
        )
        def occupancy_at(hour):
            return sum(trace[int(hour * 6)]) / 100.0
        assert occupancy_at(9) > occupancy_at(2)


class TestBernoulliField:
    def test_length_and_type(self):
        field = bernoulli_field(50, 0.5, seed=1)
        assert len(field) == 50
        assert all(isinstance(v, bool) for v in field)

    def test_extremes(self):
        assert bernoulli_field(20, 0.0) == [False] * 20
        assert bernoulli_field(20, 1.0) == [True] * 20

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            bernoulli_field(10, 1.5)

    def test_grouped_variant(self):
        grouped = grouped_bernoulli(["A", "B"], 10, 0.5, seed=1)
        assert set(grouped) == {"A", "B"}
        assert all(len(v) == 10 for v in grouped.values())
