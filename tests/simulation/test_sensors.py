"""Simulated device drivers: environment probes and event pushers."""

import pytest

from repro.errors import DeliveryError
from repro.runtime.app import Application
from repro.runtime.component import Context
from repro.sema.analyzer import analyze
from repro.simulation.sensors import (
    ClockDeviceDriver,
    EnvironmentDriver,
    ThresholdPushDriver,
)

DESIGN = """\
device Clock {
    source tickSecond as Integer;
    source tickMinute as Integer;
    source tickHour as Integer;
}
device Thermometer { source temperature as Float; }
context Log as Integer {
    when provided tickSecond from Clock
    always publish;
}
context Heat as Float {
    when provided temperature from Thermometer
    maybe publish;
}
"""


class LogImpl(Context):
    def __init__(self):
        super().__init__()
        self.ticks = []

    def on_tick_second_from_clock(self, event, discover):
        self.ticks.append(event.value)
        return event.value


class HeatImpl(Context):
    def __init__(self):
        super().__init__()
        self.alerts = []

    def on_temperature_from_thermometer(self, event, discover):
        self.alerts.append(event.value)
        return None


def build():
    app = Application(analyze(DESIGN))
    log, heat = LogImpl(), HeatImpl()
    app.implement("Log", log)
    app.implement("Heat", heat)
    return app, log, heat


class TestEnvironmentDriver:
    def test_sources_and_actions(self):
        state = {"level": 3}
        driver = EnvironmentDriver(
            sources={"x": lambda: state["level"]},
            actions={"bump": lambda by: state.__setitem__(
                "level", state["level"] + by)},
        )
        assert driver.read("x") == 3
        driver.invoke("bump", by=2)
        assert driver.read("x") == 5

    def test_unknown_source(self):
        with pytest.raises(DeliveryError):
            EnvironmentDriver().read("ghost")

    def test_unknown_action(self):
        with pytest.raises(DeliveryError):
            EnvironmentDriver().invoke("ghost")


class TestClockDeviceDriver:
    def test_tick_second_pushes(self):
        app, log, __ = build()
        driver = ClockDeviceDriver()
        app.create_device("Clock", "clk", driver)
        app.start()
        driver.start(app.clock)
        app.advance(5.0)
        assert log.ticks == [1, 2, 3, 4, 5]

    def test_query_driven_reads(self):
        app, __, __ = build()
        driver = ClockDeviceDriver()
        instance = app.create_device("Clock", "clk", driver)
        app.start()
        driver.start(app.clock)
        app.advance(125.0)
        assert instance.read("tickSecond") == 125
        assert instance.read("tickMinute") == 2
        assert instance.read("tickHour") == 0

    def test_start_requires_binding(self, clock):
        with pytest.raises(DeliveryError, match="bind"):
            ClockDeviceDriver().start(clock)

    def test_stop(self):
        app, log, __ = build()
        driver = ClockDeviceDriver()
        app.create_device("Clock", "clk", driver)
        app.start()
        driver.start(app.clock)
        app.advance(2.0)
        driver.stop()
        app.advance(10.0)
        assert log.ticks == [1, 2]


class TestThresholdPushDriver:
    def test_pushes_on_rising_edge_only(self):
        app, __, heat = build()
        temperature = {"value": 20.0}
        driver = ThresholdPushDriver(
            source="temperature",
            probe=lambda: temperature["value"],
            predicate=lambda v: v > 30.0,
            sample_seconds=1.0,
        )
        app.create_device("Thermometer", "t1", driver)
        app.start()
        driver.start(app.clock)
        app.advance(3.0)
        assert heat.alerts == []
        temperature["value"] = 35.0
        app.advance(3.0)
        assert heat.alerts == [35.0]  # one edge, not three samples
        temperature["value"] = 20.0
        app.advance(2.0)
        temperature["value"] = 40.0
        app.advance(1.0)
        assert heat.alerts == [35.0, 40.0]

    def test_query_driven_probe(self):
        driver = ThresholdPushDriver(
            source="temperature",
            probe=lambda: 22.5,
            predicate=lambda v: False,
        )
        assert driver.read("temperature") == 22.5

    def test_double_start_rejected(self, clock):
        driver = ThresholdPushDriver(
            source="temperature", probe=lambda: 0.0,
            predicate=lambda v: False,
        )
        driver.start(clock)
        with pytest.raises(DeliveryError):
            driver.start(clock)
