"""The command-line toolchain."""

import pytest

from repro.apps.cooker import DESIGN_SOURCE as COOKER
from repro.cli import main


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "cooker.diaspec"
    path.write_text(COOKER, encoding="utf-8")
    return str(path)


@pytest.fixture
def bad_design_file(tmp_path):
    path = tmp_path / "bad.diaspec"
    path.write_text(
        "context A as Float { when provided B always publish; }\n"
        "context B as Float { when provided A always publish; }\n",
        encoding="utf-8",
    )
    return str(path)


class TestCheck:
    def test_ok_design(self, design_file, capsys):
        assert main(["check", design_file]) == 0
        out = capsys.readouterr().out
        assert "3 device(s)" in out
        assert "2 context(s)" in out

    def test_design_error_exits_1(self, bad_design_file, capsys):
        assert main(["check", bad_design_file]) == 1
        assert "cycle" in capsys.readouterr().err

    def test_warnings_printed(self, tmp_path, capsys):
        path = tmp_path / "warn.diaspec"
        path.write_text("device Lonely { }\n", encoding="utf-8")
        assert main(["check", str(path)]) == 0
        assert "warning" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent.diaspec"]) == 1
        assert "error" in capsys.readouterr().err

    def test_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "broken.diaspec"
        path.write_text("device {", encoding="utf-8")
        assert main(["check", str(path)]) == 1
        assert "line 1" in capsys.readouterr().err


class TestFmt:
    def test_canonical_output_reparses(self, design_file, capsys):
        from repro.lang.parser import parse

        assert main(["fmt", design_file]) == 0
        formatted = capsys.readouterr().out
        assert parse(formatted) == parse(COOKER)

    def test_fmt_is_stable(self, design_file, tmp_path, capsys):
        main(["fmt", design_file])
        once = capsys.readouterr().out
        second = tmp_path / "second.diaspec"
        second.write_text(once, encoding="utf-8")
        main(["fmt", str(second)])
        assert capsys.readouterr().out == once


class TestGraphAndChains:
    def test_graph_lists_components(self, design_file, capsys):
        assert main(["graph", design_file]) == 0
        out = capsys.readouterr().out
        assert "context Alert" in out
        assert "--subscribe-->" in out

    def test_chains_match_figure_3(self, design_file, capsys):
        assert main(["chains", design_file]) == 0
        out = capsys.readouterr().out
        assert ("Clock -> Alert -> Notify -> TVPrompter -> RemoteTurnOff "
                "-> TurnOff -> Cooker") in out

    def test_chains_empty_design(self, tmp_path, capsys):
        path = tmp_path / "empty.diaspec"
        path.write_text("device D { }\n", encoding="utf-8")
        assert main(["chains", str(path)]) == 0
        assert "no complete" in capsys.readouterr().out


class TestStats:
    def test_counts(self, design_file, capsys):
        assert main(["stats", design_file]) == 0
        out = capsys.readouterr().out
        assert "devices:      3" in out
        assert "contexts:     2" in out
        assert "event-driven: 2" in out
        assert "functional chain" in out

    def test_parking_stats_show_mapreduce(self, tmp_path, capsys):
        from repro.apps.parking import DESIGN_SOURCE

        path = tmp_path / "parking.diaspec"
        path.write_text(DESIGN_SOURCE, encoding="utf-8")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mapreduce: 1" in out
        assert "windowed: 1" in out


class TestCompile:
    def test_writes_framework_and_stubs(self, design_file, tmp_path,
                                        capsys):
        out_dir = tmp_path / "generated"
        assert main([
            "compile", design_file, "--name", "CookerMonitoring",
            "-o", str(out_dir),
        ]) == 0
        framework = out_dir / "cooker_monitoring_framework.py"
        stubs = out_dir / "cooker_monitoring_impl.py"
        assert framework.exists() and stubs.exists()
        compile(framework.read_text(), str(framework), "exec")
        compile(stubs.read_text(), str(stubs), "exec")

    def test_no_stubs_flag(self, design_file, tmp_path):
        out_dir = tmp_path / "gen2"
        assert main([
            "compile", design_file, "--name", "X", "-o", str(out_dir),
            "--no-stubs",
        ]) == 0
        assert (out_dir / "x_framework.py").exists()
        assert not (out_dir / "x_impl.py").exists()

    def test_generated_framework_is_importable(self, design_file, tmp_path):
        import importlib.util

        out_dir = tmp_path / "gen3"
        main(["compile", design_file, "--name", "Cooker", "-o",
              str(out_dir)])
        spec = importlib.util.spec_from_file_location(
            "cooker_framework", out_dir / "cooker_framework.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert hasattr(module, "CookerFramework")


class TestMetrics:
    def test_prometheus_snapshot_on_stdout(self, capsys):
        assert main(["metrics", "--seconds", "600"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE bus_published_total counter" in out
        assert "app_gather_sweeps_total" in out
        assert "mapreduce_runs_total" in out
        assert (
            'window_deliveries_total{context="AverageOccupancy"}' in out
        )

    def test_chrome_trace_file(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        assert main([
            "metrics", "--seconds", "600",
            "--chrome-trace", str(trace_path),
        ]) == 0
        captured = capsys.readouterr()
        assert "wrote" in captured.err
        document = json.loads(trace_path.read_text(encoding="utf-8"))
        assert document["traceEvents"]
        assert any(e["ph"] == "i" for e in document["traceEvents"])


class TestChaos:
    def test_recovery_report_and_exit_zero(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "chaos-report.json"
        assert main([
            "chaos", "--seed", "7", "--report", str(report_path),
        ]) == 0
        captured = capsys.readouterr()
        printed = json.loads(captured.out)
        written = json.loads(report_path.read_text(encoding="utf-8"))
        assert printed == written
        assert printed["recovered"] is True
        assert printed["unrecovered_failures"] == 0
        assert printed["sensors_killed"] == 36

    def test_plan_that_never_fires_exits_one(self, capsys):
        # The fault window opens at 1800s; a 600s run proves nothing
        # and must not report success.
        assert main(["chaos", "--seed", "7", "--duration", "600"]) == 1
        assert "no faults fired" in capsys.readouterr().err


class TestUsage:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()
