"""Fidelity to the paper's literal figure listings.

Figures 5 and 6 parse **verbatim**.  Figures 7 and 8 contain editorial
inconsistencies in the paper itself, which this module documents and
tests around:

* Figure 7 queries ``currentElectricConsumption`` while Figure 5 declares
  the source as ``consumption``; it also writes ``TvPrompter`` where the
  prose and Figure 3 use "TV prompter" (no device declaration for either
  spelling exists in Figure 5, which declares ``Prompter``).
* Figure 8 line 30 misspells the action as ``udpate``.

The corrected designs (used by ``repro.apps``) differ only in those
spellings; the corrected texts below analyze cleanly end to end.
"""

import pytest

from repro.errors import UnknownNameError
from repro.lang.parser import parse
from repro.sema.analyzer import analyze

FIGURE_5_VERBATIM = """\
device Clock {
    source tickSecond as Integer;
    source tickMinute as Integer;
    source tickHour as Integer;
}

device Cooker {
    source consumption as Float;
    action On;
    action Off;
}

device Prompter {
    source answer as String indexed by questionId as String;
    action askQuestion;
}
"""

FIGURE_6_VERBATIM = """\
device PresenceSensor {
    attribute parkingLot as ParkingLotEnum;
    source presence as Boolean;
}

device DisplayPanel {
    action update(status as String);
}

device ParkingEntrancePanel extends DisplayPanel {
    attribute location as ParkingLotEnum;
}

device CityEntrancePanel extends DisplayPanel {
    attribute location as CityEntranceEnum;
}

device Messenger {
    action sendMessage(message as String);
}

enumeration ParkingLotEnum {
    A22, B16, D6,
}

enumeration CityEntranceEnum {
    NORTH_EAST_14Y, SOUTH_EAST_1A,
}
"""

FIGURE_7_VERBATIM = """\
context Alert as Integer {
    when provided tickSecond from Clock
    get currentElectricConsumption from Cooker
    maybe publish;
}

controller Notify {
    when provided Alert
    do askQuestion on TvPrompter;
}

context RemoteTurnOff as Boolean {
    when provided answer from TvPrompter
    get currentElectricConsumption from Cooker
    maybe publish;
}

controller TurnOff {
    when provided RemoteTurnOff
    do off on Cooker;
}
"""

FIGURE_7_CORRECTED = FIGURE_7_VERBATIM.replace(
    "currentElectricConsumption", "consumption"
).replace("TvPrompter", "Prompter").replace("do off on", "do Off on")

FIGURE_8_VERBATIM_CONTROLLER = """\
controller ParkingEntrancePanelController {
    when provided ParkingAvailability
    do udpate on ParkingEntrancePanel;
}
"""


class TestVerbatimFigures:
    def test_figure_5_parses_verbatim(self):
        spec = parse(FIGURE_5_VERBATIM)
        assert [d.name for d in spec.devices] == [
            "Clock", "Cooker", "Prompter",
        ]

    def test_figure_6_parses_verbatim(self):
        spec = parse(FIGURE_6_VERBATIM)
        assert len(spec.devices) == 5
        assert len(spec.enumerations) == 2

    def test_figures_5_and_6_analyze_together(self):
        # Figure 6 references its own enumerations; Figure 5 is
        # self-contained: the combined taxonomy analyzes.
        design = analyze(FIGURE_5_VERBATIM + FIGURE_6_VERBATIM)
        assert design.devices["ParkingEntrancePanel"].is_subtype_of(
            "DisplayPanel"
        )

    def test_figure_7_parses_but_does_not_analyze_verbatim(self):
        """Figure 7's text is syntactically valid DiaSpec; the analyzer
        catches the paper's cross-figure inconsistencies."""
        parse(FIGURE_7_VERBATIM)  # grammar-level: fine
        with pytest.raises(UnknownNameError):
            analyze(FIGURE_5_VERBATIM + FIGURE_7_VERBATIM)

    def test_figure_7_corrected_analyzes(self):
        design = analyze(FIGURE_5_VERBATIM + FIGURE_7_CORRECTED)
        assert set(design.contexts) == {"Alert", "RemoteTurnOff"}
        assert design.report.warnings == []

    def test_figure_8_typo_caught_by_analyzer(self):
        source = (
            FIGURE_6_VERBATIM
            + """
structure Availability { parkingLot as ParkingLotEnum; count as Integer; }
context ParkingAvailability as Availability[] {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot
    always publish;
}
"""
            + FIGURE_8_VERBATIM_CONTROLLER
        )
        with pytest.raises(UnknownNameError, match="udpate"):
            analyze(source)


class TestPaperDesignSemantics:
    """Statements the paper makes in prose, checked on the corrected
    designs."""

    def test_contexts_can_invoke_contexts_but_controllers_cannot(self):
        """'contexts can invoke other contexts or controllers, but
        controllers cannot invoke context components' (§IV.1).  The
        grammar makes the controller side unexpressible; the context
        side works."""
        design = analyze(
            "device D { source s as Float; }\n"
            "context A as Float { when provided s from D always publish; }\n"
            "context B as Float { when provided A always publish; }\n"
        )
        assert design.graph.layers["B"] == 2

    def test_tick_second_could_also_be_periodic(self):
        """'the tickSecond source could have also been delivered using a
        periodic model' (§IV.1)."""
        analyze(
            FIGURE_5_VERBATIM
            + "context Alert as Integer {\n"
            "    when periodic tickSecond from Clock <1 s>\n"
            "    get consumption from Cooker\n"
            "    maybe publish;\n"
            "}\n"
        )

    def test_device_declaration_does_not_restrict_delivery_model(self):
        """'a device declaration does not restrict client context
        components to use any of the three models' (§IV): the same source
        serves all three delivery styles in one design."""
        analyze(
            "device S { source v as Float; }\n"
            "context EventStyle as Float { when provided v from S "
            "always publish; }\n"
            "context PeriodicStyle as Float { when periodic v from S "
            "<1 min> always publish; }\n"
            "context QueryStyle as Float { when provided v from S "
            "get v from S always publish; }\n"
        )
