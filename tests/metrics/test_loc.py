"""LoC counting used by the generated-ratio measurement."""

from repro.metrics.loc import count_loc, count_module_loc


class TestPythonCounting:
    def test_plain_statements(self):
        assert count_loc("x = 1\ny = 2\n") == 2

    def test_blank_lines_excluded(self):
        assert count_loc("x = 1\n\n\ny = 2\n") == 2

    def test_comments_excluded(self):
        assert count_loc("# header\nx = 1  # trailing\n") == 1

    def test_docstrings_excluded(self):
        source = (
            '"""Module doc."""\n'
            "def f():\n"
            '    """Function doc\n'
            '    spanning lines."""\n'
            "    return 1\n"
        )
        assert count_loc(source) == 2

    def test_class_docstrings_excluded(self):
        source = (
            "class C:\n"
            '    """Doc."""\n'
            "    x = 1\n"
        )
        assert count_loc(source) == 2

    def test_string_assignment_is_code(self):
        assert count_loc('x = """not a docstring"""\n') == 1

    def test_multiline_statement_counts_each_line(self):
        source = "x = (\n    1 +\n    2\n)\n"
        assert count_loc(source) == 4


class TestPlainTextFallback:
    def test_diaspec_counting(self):
        source = (
            "// a comment\n"
            "device D {\n"
            "    source x as Integer;\n"
            "}\n"
            "\n"
        )
        assert count_loc(source) == 3

    def test_hash_comments_in_plain_text(self):
        assert count_loc("device D {\n# note\n}\n") == 2


class TestModuleCounting:
    def test_count_module_loc(self):
        from repro.metrics import stats

        assert count_module_loc(stats) > 10
