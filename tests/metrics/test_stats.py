"""Summary-statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.stats import mean, percentile, stdev, summarize


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])


class TestStdev:
    def test_known_value(self):
        assert stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == (
            pytest.approx(2.138, abs=1e-3)
        )

    def test_single_value_is_zero(self):
        assert stdev([5.0]) == 0.0

    def test_constant_sequence(self):
        assert stdev([3.0, 3.0, 3.0]) == 0.0


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0
        assert summary["p50"] == 2.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
def test_percentile_bounded_by_extremes(values):
    for q in (0, 25, 50, 75, 100):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
def test_mean_between_extremes(values):
    assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6
