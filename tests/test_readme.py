"""The README's runnable snippets actually run."""

import os
import re

README = os.path.join(os.path.dirname(__file__), "..", "README.md")


def python_blocks():
    with open(README, "r", encoding="utf-8") as handle:
        text = handle.read()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_has_python_blocks(self):
        assert len(python_blocks()) >= 2

    def test_quickstart_block_runs(self):
        blocks = [b for b in python_blocks() if "Application(analyze" in b]
        assert blocks, "quickstart block missing"
        namespace = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        # The block's last statement publishes a hot reading through to
        # the fan controller.
        assert "app" in namespace

    def test_incomplete_blocks_are_marked(self):
        """Blocks that are illustrative fragments must contain an
        ellipsis or comment marker so readers know they are not
        complete programs."""
        for block in python_blocks():
            if "Application(analyze" in block:
                continue  # the complete quickstart
            assert "..." in block or "# ..." in block

    def test_referenced_files_exist(self):
        base = os.path.dirname(README)
        with open(README, "r", encoding="utf-8") as handle:
            text = handle.read()
        for relative in ("DESIGN.md", "EXPERIMENTS.md", "docs/language.md",
                         "docs/runtime.md"):
            assert relative in text
            assert os.path.exists(os.path.join(base, relative)), relative
        for example in re.findall(r"`(\w+\.py)` \|", text):
            assert os.path.exists(
                os.path.join(base, "examples", example)
            ), example
