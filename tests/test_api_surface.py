"""Audit of the supported public surface (`repro.api`).

Three contracts: every exported name resolves, every exported name is
documented in the README's public-surface table, and importing the
facade is silent — no DeprecationWarning may fire on the supported
import path, because that is the one place users cannot migrate away
from.
"""

import os
import subprocess
import sys

import repro.api as api

README = os.path.join(os.path.dirname(__file__), "..", "README.md")


class TestExports:
    def test_every_name_is_importable(self):
        missing = [
            name for name in api.__all__ if not hasattr(api, name)
        ]
        assert missing == []

    def test_all_is_sorted_and_unique(self):
        assert list(api.__all__) == sorted(set(api.__all__))

    def test_no_undocumented_config_family_members(self):
        # The whole live-knob config family rides on the facade.
        for name in (
            "ConfigBase",
            "RuntimeConfig",
            "SweepConfig",
            "CacheConfig",
            "BatchConfig",
            "ShardConfig",
            "PlacementConfig",
            "NetworkConfig",
            "TuningConfig",
        ):
            assert name in api.__all__, name

    def test_tuning_surface_is_exported(self):
        for name in (
            "TuningConfig",
            "TuningController",
            "Knob",
            "KnobRegistry",
            "TuningError",
        ):
            assert name in api.__all__, name
            assert hasattr(api, name)


class TestReadmeDocumentsTheSurface:
    def test_every_export_appears_in_the_readme(self):
        with open(README, "r", encoding="utf-8") as handle:
            text = handle.read()
        undocumented = [
            name for name in api.__all__ if f"`{name}`" not in text
        ]
        assert undocumented == []


class TestImportIsWarningFree:
    def test_importing_the_facade_raises_no_deprecation_warning(self):
        # A fresh interpreter so no cached module hides a warning.
        result = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro.api",
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
