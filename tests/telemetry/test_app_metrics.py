"""One registry observes every runtime layer of a running application.

The design below deliberately crosses all instrumented surfaces: device
reads with a retry policy, periodic gathering, grouped MapReduce windows,
context-to-context subscription, a controller actuation, and deadline
monitoring.  Each assertion pairs a metric with the legacy ``stats()``
view it mirrors, so the two surfaces cannot drift apart silently.
"""

from repro.errors import DeliveryError
from repro.mapreduce.api import MapReduce
from repro.runtime.app import Application
from repro.runtime.config import RuntimeConfig
from repro.runtime.component import Context, Controller
from repro.runtime.device import CallableDriver, DeviceDriver
from repro.sema.analyzer import analyze
from repro.telemetry import MetricsRegistry

DESIGN = """\
device Meter {
    attribute zone as ZoneEnum;
    source load as Float expect retry 1;
}
device Horn { action honk; }
enumeration ZoneEnum { NORTH, SOUTH }

context ZoneLoad as Float {
    when periodic load from Meter <1 min>
    grouped by zone every <3 min>
    with map as Float reduce as Float
    always publish;
}

context Alarm as Boolean {
    expect deadline <50 ms>;

    when provided ZoneLoad
    always publish;
}

controller HornController {
    expect deadline <50 ms>;

    when provided Alarm
    do honk on Horn;
}
"""


class ZoneLoadImpl(Context, MapReduce):
    def map(self, zone, load, collector):
        collector.emit_map(zone, load)

    def combine(self, zone, loads, collector):
        collector.emit_combine(zone, sum(loads))

    def reduce(self, zone, loads, collector):
        collector.emit_reduce(zone, sum(loads))

    def on_periodic_load(self, load_by_zone, discover):
        return float(sum(load_by_zone.values()))


class AlarmImpl(Context):
    def on_zone_load(self, value, discover):
        return value > 100.0


class HornControllerImpl(Controller):
    def __init__(self):
        super().__init__()
        self.honks = 0

    def on_alarm(self, value, discover):
        self.honks += 1


class GlitchOnceDriver(DeviceDriver):
    """Fails exactly the first read, then serves — masked by `retry 1`."""

    def __init__(self, value):
        self.value = value
        self.attempts = 0

    def read_load(self):
        self.attempts += 1
        if self.attempts == 1:
            raise DeliveryError("transient glitch")
        return self.value


def build(metrics=None):
    app = Application(analyze(DESIGN), RuntimeConfig(metrics=metrics))
    app.implement("ZoneLoad", ZoneLoadImpl())
    app.implement("Alarm", AlarmImpl())
    controller = app.implement("HornController", HornControllerImpl())
    app.create_device("Meter", "m-north-1", GlitchOnceDriver(4.0),
                      zone="NORTH")
    app.create_device(
        "Meter", "m-north-2",
        CallableDriver(sources={"load": lambda: 6.0}), zone="NORTH",
    )
    app.create_device(
        "Meter", "m-south-1",
        CallableDriver(sources={"load": lambda: 2.0}), zone="SOUTH",
    )
    app.create_device(
        "Horn", "horn-1", CallableDriver(actions={"honk": lambda: None})
    )
    app.start()
    return app, controller


# 9 one-minute sweeps -> three 3-minute windows -> 3 published windows.
RUN_SECONDS = 540
SWEEPS = 9
WINDOWS = 3


class TestAppMetricsIntegration:
    def test_default_application_owns_a_registry(self):
        app, __ = build()
        assert isinstance(app.metrics, MetricsRegistry)

    def test_explicit_registry_is_adopted(self):
        shared = MetricsRegistry()
        app, __ = build(metrics=shared)
        assert app.metrics is shared

    def test_bus_metrics_mirror_stats_view(self):
        app, __ = build()
        app.advance(RUN_SECONDS)
        stats = app.bus.stats()
        assert stats["published"] > 0
        assert app.metrics.value("bus_published_total") == stats["published"]
        assert app.metrics.value("bus_delivered_total") == stats["delivered"]
        assert app.metrics.value("bus_topics") > 0

    def test_registry_metrics_mirror_stats_view(self):
        app, __ = build()
        app.advance(RUN_SECONDS)
        stats = app.registry.stats()
        assert stats["lookups"] >= SWEEPS
        assert app.metrics.value("registry_lookups_total") == stats["lookups"]
        assert (
            app.metrics.value("registry_index_hits_total")
            == stats["index_hits"]
        )
        assert app.metrics.value("registry_entities") == stats["entities"] == 4

    def test_window_metrics_track_accumulator(self):
        app, __ = build()
        app.advance(RUN_SECONDS)
        assert (
            app.metrics.value("window_deliveries_total", context="ZoneLoad")
            == SWEEPS
        )
        assert (
            app.metrics.value("window_closes_total", context="ZoneLoad")
            == WINDOWS
        )
        assert (
            app.metrics.value(
                "window_pending_deliveries", context="ZoneLoad"
            )
            == 0  # 9 deliveries fill exactly 3 windows
        )
        accumulator_stats = app.stats["windows"]["ZoneLoad"]
        assert accumulator_stats["deliveries"] == SWEEPS
        assert accumulator_stats["closed_windows"] == WINDOWS

    def test_mapreduce_metrics_mirror_cumulative_stats(self):
        app, __ = build()
        app.advance(RUN_SECONDS)
        stats = app.mapreduce.stats()
        assert stats["runs"] == SWEEPS
        assert app.metrics.value("mapreduce_runs_total") == stats["runs"]
        assert app.metrics.value("mapreduce_mapped_total") == stats["mapped"]
        assert (
            app.metrics.value("mapreduce_reduced_total") == stats["reduced"]
        )

    def test_device_retry_counters(self):
        app, __ = build()
        app.advance(RUN_SECONDS)
        reads = app.metrics.value("device_reads_total", device_type="Meter")
        assert reads == 3 * SWEEPS
        # The glitchy meter failed its very first read; `expect retry 1`
        # masked it, so the sweep saw no error but telemetry did.
        assert (
            app.metrics.value(
                "device_read_retries_total", device_type="Meter"
            )
            == 1
        )
        assert (
            app.metrics.value(
                "device_read_failures_total", device_type="Meter"
            )
            == 0
        )
        assert app.stats["gather_errors"] == 0
        assert app.metrics.value("app_gather_errors_total") == 0

    def test_qos_metrics_and_latency_histogram(self):
        app, controller = build()
        app.advance(RUN_SECONDS)
        alarm = app.qos.component("Alarm")
        assert alarm.activations == WINDOWS
        assert (
            app.metrics.value("qos_activations_total", component="Alarm")
            == alarm.activations
        )
        assert (
            app.metrics.value("qos_violations_total", component="Alarm")
            == alarm.violations
            == 0
        )
        # The push histogram saw one observation per activation.
        assert (
            app.metrics.value("qos_activation_seconds", component="Alarm")
            == WINDOWS
        )
        assert (
            app.metrics.value(
                "qos_activation_seconds", component="HornController"
            )
            == controller.honks
            == WINDOWS
        )

    def test_component_activation_callbacks(self):
        app, __ = build()
        app.advance(RUN_SECONDS)
        assert app.metrics.value("app_gather_sweeps_total") == SWEEPS
        assert (
            app.metrics.value(
                "context_activations_total", component="ZoneLoad"
            )
            == WINDOWS
        )
        assert (
            app.metrics.value("context_activations_total", component="Alarm")
            == WINDOWS
        )
        assert (
            app.metrics.value(
                "controller_activations_total", component="HornController"
            )
            == WINDOWS
        )

    def test_prometheus_snapshot_covers_every_layer(self):
        app, __ = build()
        app.advance(RUN_SECONDS)
        text = app.metrics.render_prometheus()
        for family in (
            "bus_published_total",
            "registry_lookups_total",
            "window_deliveries_total",
            "mapreduce_runs_total",
            "device_read_retries_total",
            "qos_activations_total",
            "qos_activation_seconds_bucket",
            "app_gather_sweeps_total",
        ):
            assert family in text, family
        assert 'device_type="Meter"' in text
        assert 'component="Alarm"' in text
