"""The Instrumented mixin: declarative attach_metrics/stats/reset_stats."""

from repro.telemetry import MetricsRegistry
from repro.telemetry.instrument import Instrumented, MetricSpec


class Widget(Instrumented):
    metric_specs = (
        MetricSpec(
            "widget_events_total",
            "_events",
            stats_key="events",
            resettable=True,
        ),
        MetricSpec("widget_errors_total", "_errors"),  # metric-only
        MetricSpec(
            "widget_depth",
            "depth",
            kind="gauge",
            stats_key="depth",
        ),
    )

    def __init__(self):
        self._events = 0
        self._errors = 0
        self._items = []

    def depth(self) -> int:  # bound method source: called at collection
        return len(self._items)

    def _extra_stats(self):
        return {"mode": "test"}


class TestAttachMetrics:
    def test_callbacks_read_live_values(self):
        registry = MetricsRegistry()
        widget = Widget()
        widget.attach_metrics(registry)
        assert registry.value("widget_events_total") == 0
        widget._events += 3
        widget._items.append(object())
        assert registry.value("widget_events_total") == 3
        assert registry.value("widget_depth") == 1

    def test_labels_propagate(self):
        registry = MetricsRegistry()
        widget = Widget()
        widget.attach_metrics(registry, component="w1")
        widget._events += 1
        assert registry.value("widget_events_total", component="w1") == 1

    def test_kinds_are_declared(self):
        registry = MetricsRegistry()
        Widget().attach_metrics(registry)
        assert registry.get("widget_events_total").kind == "counter"
        assert registry.get("widget_depth").kind == "gauge"


class TestStats:
    def test_stats_keys_and_extra_stats(self):
        widget = Widget()
        widget._events = 2
        widget._errors = 9  # no stats_key: metric-only, not in stats()
        assert widget.stats() == {"events": 2, "depth": 0, "mode": "test"}

    def test_reset_stats_zeroes_only_resettable(self):
        widget = Widget()
        widget._events = 5
        widget._errors = 5
        widget._items.append(object())
        widget.reset_stats()
        assert widget._events == 0
        assert widget._errors == 5  # not declared resettable
        assert widget.depth() == 1  # gauges untouched


class TestDefaults:
    def test_base_class_is_inert(self):
        subsystem = Instrumented()
        subsystem.attach_metrics(MetricsRegistry())  # no specs: no-op
        assert subsystem.stats() == {}
        subsystem.reset_stats()
