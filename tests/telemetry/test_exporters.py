"""Exporter formats: Prometheus text exposition and Chrome-trace JSON."""

import json
import re

from repro.runtime.app import Application
from repro.runtime.config import RuntimeConfig
from repro.runtime.device import CallableDriver
from repro.runtime.component import Context, Controller
from repro.runtime.tracing import Tracer
from repro.sema.analyzer import analyze
from repro.telemetry import (
    MetricsRegistry,
    chrome_trace_events,
    parse_chrome_trace,
    render_chrome_trace,
    render_prometheus,
)

SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
)


class TestPrometheusFormat:
    def test_counter_and_gauge_samples(self):
        registry = MetricsRegistry()
        registry.counter("events_total", help="Events seen.").inc(3)
        registry.gauge("depth", help="Queue depth.").set(2.5)
        text = render_prometheus(registry)
        assert "# HELP events_total Events seen.\n" in text
        assert "# TYPE events_total counter\n" in text
        assert "\nevents_total 3\n" in text
        assert "# TYPE depth gauge\n" in text
        assert "\ndepth 2.5\n" in text

    def test_labelled_samples_sorted(self):
        registry = MetricsRegistry()
        registry.counter("reads_total", zone="south").inc(1)
        registry.counter("reads_total", zone="north").inc(2)
        text = render_prometheus(registry)
        north = text.index('reads_total{zone="north"} 2')
        south = text.index('reads_total{zone="south"} 1')
        assert north < south

    def test_rendering_is_deterministic_across_registration_order(self):
        # Two registries populated in opposite orders must render
        # byte-identical text: families sort by name, samples by label
        # set, independent of insertion history.
        forward = MetricsRegistry()
        forward.counter("alpha_total", help="A.").inc(1)
        forward.counter("beta_total", zone="north").inc(2)
        forward.counter("beta_total", zone="south").inc(3)
        forward.gauge("gamma", help="G.").set(4)
        backward = MetricsRegistry()
        backward.gauge("gamma", help="G.").set(4)
        backward.counter("beta_total", zone="south").inc(3)
        backward.counter("beta_total", zone="north").inc(2)
        backward.counter("alpha_total", help="A.").inc(1)
        assert render_prometheus(forward) == render_prometheus(backward)

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", path='a\\b"c\nd').inc()
        text = render_prometheus(registry)
        assert r'odd_total{path="a\\b\"c\nd"} 1' in text

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", help="Latency.", buckets=(0.01, 0.1)
        )
        for value in (0.005, 0.05, 0.5):
            histogram.observe(value)
        text = render_prometheus(registry)
        assert "# TYPE lat_seconds histogram\n" in text
        assert 'lat_seconds_bucket{le="0.01"} 1\n' in text
        assert 'lat_seconds_bucket{le="0.1"} 2\n' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3\n' in text
        assert "lat_seconds_sum 0.555" in text
        assert "lat_seconds_count 3" in text

    def test_every_sample_line_is_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("a_total", kind="x").inc()
        registry.gauge("b")
        registry.histogram("c_seconds", buckets=(1.0,)).observe(2.0)
        registry.callback("d_total", lambda: 4)
        for line in render_prometheus(registry).splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert SAMPLE_LINE.match(line), line

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_registry_convenience_method(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        assert registry.render_prometheus() == render_prometheus(registry)


TRACE_DESIGN = """\
device Button {
    source pressed as Boolean;
}

device Bell {
    action ring;
}

context Echo as Boolean {
    when provided pressed from Button
    always publish;
}

controller BellController {
    when provided Echo
    do ring on Bell;
}
"""


class EchoImpl(Context):
    def on_pressed_from_button(self, event, discover):
        return event.value


class BellControllerImpl(Controller):
    def on_echo(self, value, discover):
        discover.bells().ring()


def traced_app():
    app = Application(analyze(TRACE_DESIGN), RuntimeConfig(name="bell"))
    app.implement("Echo", EchoImpl())
    app.implement("BellController", BellControllerImpl())
    button = app.create_device(
        "Button", "button-1", CallableDriver(sources={"pressed": lambda: True})
    )
    app.create_device("Bell", "bell-1", CallableDriver(actions={"ring": lambda: None}))
    tracer = Tracer(app).attach()
    app.start()
    app.advance(1)
    button.publish("pressed", True)
    app.advance(1)
    button.publish("pressed", False)
    return app, tracer


class TestChromeTrace:
    def test_export_is_valid_trace_event_json(self):
        app, tracer = traced_app()
        document = json.loads(render_chrome_trace(tracer, app.name))
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                "args": {"name": "bell"}} in metadata
        assert {m["args"]["name"] for m in metadata} >= {
            "bell", "source", "context", "action"
        }
        assert len(instants) == len(tracer.entries) > 0
        for event in instants:
            assert event["cat"] in ("source", "context", "action")
            assert event["s"] == "g"
            assert isinstance(event["ts"], (int, float))

    def test_round_trip_preserves_timeline(self):
        app, tracer = traced_app()
        parsed = parse_chrome_trace(render_chrome_trace(tracer, app.name))
        assert len(parsed) == len(tracer.entries)
        for original, back in zip(tracer.entries, parsed):
            assert back.timestamp == original.timestamp
            assert back.kind == original.kind
            assert back.subject == original.subject
            assert back.detail == original.detail
            assert back.value == repr(original.value)

    def test_parse_accepts_dict_documents(self):
        app, tracer = traced_app()
        events = chrome_trace_events(tracer)
        parsed = parse_chrome_trace({"traceEvents": events})
        assert len(parsed) == len(tracer.entries)

    def test_causal_order_source_context_action(self):
        __, tracer = traced_app()
        kinds = [e.kind for e in tracer.entries[:3]]
        assert kinds == ["source", "context", "action"]
