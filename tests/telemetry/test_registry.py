"""MetricsRegistry primitives: counters, gauges, histograms, callbacks."""

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("events_total")
        b = registry.counter("events_total")
        a.inc()
        assert b is a
        assert registry.value("events_total") == 1

    def test_labelled_children_are_independent(self):
        registry = MetricsRegistry()
        north = registry.counter("reads_total", zone="north")
        south = registry.counter("reads_total", zone="south")
        north.inc(3)
        south.inc(1)
        assert registry.value("reads_total", zone="north") == 3
        assert registry.value("reads_total", zone="south") == 1
        assert len(registry.get("reads_total")) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("thing")


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_observe_assigns_inclusive_buckets(self):
        histogram = Histogram(buckets=(1.0, 5.0))
        for value in (0.5, 1.0, 3.0, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(109.5)
        # le=1.0 catches 0.5 and the boundary value 1.0.
        assert histogram.bucket_counts() == [
            (1.0, 2),
            (5.0, 4),
            (float("inf"), 5),
        ]

    def test_default_buckets_are_sorted_seconds(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS
        histogram = MetricsRegistry().histogram("t_seconds")
        assert histogram.bounds == DEFAULT_BUCKETS

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestCallbacks:
    def test_callback_reads_at_collection_time(self):
        registry = MetricsRegistry()
        state = {"count": 0}
        registry.callback("live_total", lambda: state["count"])
        assert registry.value("live_total") == 0
        state["count"] = 7
        assert registry.value("live_total") == 7

    def test_callback_can_be_repointed(self):
        registry = MetricsRegistry()
        registry.callback("v", lambda: 1, kind="gauge")
        registry.callback("v", lambda: 2, kind="gauge")
        assert registry.value("v") == 2

    def test_callbacks_and_labels(self):
        registry = MetricsRegistry()
        registry.callback("acts_total", lambda: 5, component="A")
        registry.callback("acts_total", lambda: 9, component="B")
        snapshot = registry.snapshot()
        assert snapshot["acts_total"] == {
            (("component", "A"),): 5,
            (("component", "B"),): 9,
        }


class TestRegistrySurface:
    def test_families_sorted_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("z_total")
        registry.gauge("a_depth")
        assert [f.name for f in registry.families()] == ["a_depth", "z_total"]
        assert "z_total" in registry
        assert "missing" not in registry
        assert len(registry) == 2

    def test_help_kept_from_first_non_empty(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        registry.counter("x_total", help="Late help still lands.")
        assert registry.get("x_total").help == "Late help still lands."
