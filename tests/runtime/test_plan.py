"""Precompiled delivery plans: dispatch identity, invalidation, memos.

Plans must be an invisible optimization: with ``compile_plans`` on, the
exact same subscribers receive the exact same events (including the
taxonomy rule — subtype publishes reaching supertype subscriptions) and
the bus counters advance identically; a subscription or binding change
must expire the affected plans via the epoch/version counters, never
serve a stale dispatch table.
"""

import pytest

from repro.api import (
    Application,
    BatchConfig,
    CallableDriver,
    Context,
    Controller,
    RuntimeConfig,
    analyze,
)
from repro.errors import BindingError
from repro.runtime.grouping import group_readings, group_readings_planned
from repro.runtime.plan import DeliveryPlanner, missing
from repro.runtime.proxies import make_proxy, make_proxy_set

DESIGN = """\
device MotionSensor {
    attribute zone as String;
    source presence as Boolean;
}
device FancyMotionSensor extends MotionSensor {
    source battery as Float;
}

context Watcher as Integer {
    when provided presence from MotionSensor
    always publish;
}

controller Alarm {
    when provided Watcher do Ring on Bell;
}

device Bell { action Ring; }
"""


class WatcherImpl(Context):
    def __init__(self):
        super().__init__()
        self.events = []

    def on_presence_from_motion_sensor(self, event, discover):
        self.events.append((event.device.entity_id, event.value))
        return len(self.events)


class AlarmImpl(Controller):
    def __init__(self):
        super().__init__()
        self.values = []

    def on_watcher(self, value, discover):
        self.values.append(value)


def build_app(batch=None, fancy=True):
    config = RuntimeConfig(
        batch=batch if batch is not None else BatchConfig()
    )
    app = Application(analyze(DESIGN), config)
    watcher = app.implement("Watcher", WatcherImpl())
    app.implement("Alarm", AlarmImpl())
    device_type = "FancyMotionSensor" if fancy else "MotionSensor"
    instance = app.create_device(
        device_type,
        "m-1",
        CallableDriver(sources={"presence": lambda: True}),
        zone="hall",
    )
    app.start()
    return app, watcher, instance


class TestCompiledDispatch:
    def test_subtype_publish_reaches_supertype_subscription(self):
        app, watcher, instance = build_app(
            batch=BatchConfig(enabled=True), fancy=True
        )
        instance.publish("presence", True)
        assert watcher.events == [("m-1", True)]

    def test_plans_on_equals_plans_off(self):
        plain_app, plain_watcher, plain_instance = build_app(
            batch=BatchConfig(enabled=False)
        )
        plan_app, plan_watcher, plan_instance = build_app(
            batch=BatchConfig(enabled=True)
        )
        for instance in (plain_instance, plan_instance):
            instance.publish("presence", True)
            instance.publish("presence", False)
        assert plan_watcher.events == plain_watcher.events
        # Bus accounting stays truthful through the compiled path: the
        # same number of per-topic publishes and deliveries.
        assert (
            plan_app.bus.stats()["published"]
            == plain_app.bus.stats()["published"]
        )
        assert (
            plan_app.bus.stats()["delivered"]
            == plain_app.bus.stats()["delivered"]
        )

    def test_compile_once_then_hits(self):
        app, __, instance = build_app(batch=BatchConfig(enabled=True))
        for __unused in range(5):
            instance.publish("presence", True)
        stats = app.planner.stats()
        assert stats["compiles"] >= 1
        assert stats["hits"] >= 4
        assert stats["invalidations"] == 0

    def test_subscription_change_invalidates(self):
        app, watcher, instance = build_app(batch=BatchConfig(enabled=True))
        instance.publish("presence", True)
        seen = []
        app.bus.subscribe(
            ("source", "MotionSensor", "presence"),
            lambda event: seen.append(event.value),
        )
        instance.publish("presence", False)
        # The late subscriber is picked up — the old plan expired on the
        # bus epoch bump instead of serving its stale target list.
        assert seen == [False]
        assert len(watcher.events) == 2
        assert app.planner.stats()["invalidations"] >= 1

    def test_binding_change_invalidates(self):
        app, watcher, instance = build_app(batch=BatchConfig(enabled=True))
        instance.publish("presence", True)
        before = app.planner.stats()["invalidations"]
        other = app.create_device(
            "MotionSensor",
            "m-2",
            CallableDriver(sources={"presence": lambda: False}),
            zone="yard",
        )
        other.publish("presence", False)
        assert watcher.events[-1] == ("m-2", False)
        # The original plan (compiled before the bind) expires on the
        # registry version bump the next time its key publishes.
        instance.publish("presence", True)
        assert app.planner.stats()["invalidations"] >= before + 1
        assert watcher.events[-1] == ("m-1", True)

    def test_unsubscribed_callback_stops_firing(self):
        app, watcher, instance = build_app(batch=BatchConfig(enabled=True))
        instance.publish("presence", True)
        app.stop()
        instance.publish("presence", False)
        assert watcher.events == [("m-1", True)]

    def test_disabled_plans_leave_planner_unset(self):
        app, __, __unused = build_app(batch=BatchConfig(enabled=False))
        assert app.planner is None
        app2, __, __unused2 = build_app(
            batch=BatchConfig(enabled=True, compile_plans=False)
        )
        assert app2.planner is None


class TestTopicMemo:
    def test_memo_primed_at_bind(self):
        app, __, __unused = build_app(batch=BatchConfig(enabled=False))
        assert ("FancyMotionSensor", "presence") in app._topic_memo
        topics = app._topic_memo[("FancyMotionSensor", "presence")]
        assert topics == (
            ("source", "FancyMotionSensor", "presence"),
            ("source", "MotionSensor", "presence"),
        )

    def test_subtype_only_source_does_not_walk_to_ancestor(self):
        app, __, __unused = build_app(batch=BatchConfig(enabled=False))
        topics = app._topics_for(
            app.design.devices["FancyMotionSensor"], "battery"
        )
        assert topics == (("source", "FancyMotionSensor", "battery"),)


class TestMembership:
    def test_membership_matches_group_readings(self):
        app, __, __unused = build_app(batch=BatchConfig(enabled=True))
        app.create_device(
            "MotionSensor",
            "m-2",
            CallableDriver(sources={"presence": lambda: False}),
            zone="yard",
        )
        planner = app.planner
        membership = planner.membership("MotionSensor", "zone")
        readings = [
            (instance, idx)
            for idx, instance in enumerate(app.registry)
            if instance.info.name.endswith("MotionSensor")
        ]
        assert group_readings_planned(
            readings, membership, "zone"
        ) == group_readings(readings, "zone")

    def test_membership_recompiles_on_bind(self):
        app, __, __unused = build_app(batch=BatchConfig(enabled=True))
        planner = app.planner
        first = planner.membership("MotionSensor", "zone")
        assert set(first) == {"m-1"}
        assert planner.membership("MotionSensor", "zone") is first
        app.create_device(
            "MotionSensor",
            "m-2",
            CallableDriver(sources={"presence": lambda: False}),
            zone="yard",
        )
        second = planner.membership("MotionSensor", "zone")
        assert set(second) == {"m-1", "m-2"}

    def test_missing_attribute_raises_binding_error(self):
        app, __, instance = build_app(batch=BatchConfig(enabled=True))
        membership = app.planner.membership("MotionSensor", "nonsense")
        assert membership["m-1"] is missing()
        with pytest.raises(BindingError):
            group_readings_planned(
                [(instance, 1.0)], membership, "nonsense"
            )

    def test_clear_counts_invalidations(self):
        app, __, instance = build_app(batch=BatchConfig(enabled=True))
        instance.publish("presence", True)
        app.planner.membership("MotionSensor", "zone")
        entries = app.planner.entry_count()
        assert entries >= 2
        app.planner.clear()
        assert app.planner.entry_count() == 0
        assert app.planner.stats()["invalidations"] >= entries


class TestProxyCache:
    def test_make_proxy_memoized_per_instance(self):
        app, __, instance = build_app()
        assert make_proxy(instance) is make_proxy(instance)

    def test_proxy_set_reuses_cached_proxies(self):
        app, __, instance = build_app()
        proxy = make_proxy(instance)
        proxy_set = make_proxy_set("MotionSensor", [instance])
        assert proxy_set[0] is proxy

    def test_unbind_clears_cached_proxy(self):
        app, __, instance = build_app()
        make_proxy(instance)
        app.unbind_device("m-1")
        assert getattr(instance, "_cached_proxy", None) is None

    def test_delivered_events_reuse_one_proxy(self):
        app, watcher, instance = build_app(batch=BatchConfig(enabled=True))
        proxy = make_proxy(instance)
        instance.publish("presence", True)
        assert watcher.events and make_proxy(instance) is proxy


class TestPlannerStandalone:
    def test_repr_and_stats_shape(self):
        app, __, instance = build_app(batch=BatchConfig(enabled=True))
        instance.publish("presence", True)
        planner = app.planner
        assert "DeliveryPlanner" in repr(planner)
        stats = planner.stats()
        assert {"compiles", "hits", "invalidations", "plans"} <= set(stats)

    def test_planner_without_metrics(self):
        app, __, __unused = build_app(batch=BatchConfig(enabled=False))
        planner = DeliveryPlanner(app.design, app.bus, app.registry)
        plan = planner.source_plan("FancyMotionSensor", "presence")
        assert plan.topics == (
            ("source", "FancyMotionSensor", "presence"),
            ("source", "MotionSensor", "presence"),
        )
        assert planner.source_plan("FancyMotionSensor", "presence") is plan
