"""Device proxies and proxy sets (Figure 11's discover idiom)."""

import pytest

from repro.errors import ActuationError, DiscoveryError
from repro.runtime.device import CallableDriver, DeviceInstance
from repro.runtime.proxies import make_proxy, make_proxy_set
from repro.sema.analyzer import analyze

DESIGN = """\
device ParkingEntrancePanel {
    attribute location as LotEnum;
    source brightness as Integer;
    action update(status as String);
}
enumeration LotEnum { A22, B16, D6 }
"""


@pytest.fixture
def design():
    return analyze(DESIGN)


def make_panel(design, entity_id, lot, log):
    return DeviceInstance(
        design.devices["ParkingEntrancePanel"],
        entity_id,
        CallableDriver(
            sources={"brightness": lambda: 80},
            actions={"update": lambda status: log.append((entity_id, status))},
        ),
        {"location": lot},
    )


class TestDeviceProxy:
    def test_identity(self, design):
        proxy = make_proxy(make_panel(design, "p1", "A22", []))
        assert proxy.entity_id == "p1"
        assert proxy.device_type == "ParkingEntrancePanel"

    def test_attribute_access_snake_case(self, design):
        proxy = make_proxy(make_panel(design, "p1", "A22", []))
        assert proxy.location == "A22"
        assert proxy.attributes == {"location": "A22"}

    def test_source_query_method(self, design):
        proxy = make_proxy(make_panel(design, "p1", "A22", []))
        assert proxy.brightness() == 80
        assert proxy.query("brightness") == 80

    def test_action_method(self, design):
        log = []
        proxy = make_proxy(make_panel(design, "p1", "A22", log))
        proxy.update(status="FULL")
        proxy.act("update", status="FREE: 3")
        assert log == [("p1", "FULL"), ("p1", "FREE: 3")]

    def test_unknown_facet_raises_attribute_error(self, design):
        proxy = make_proxy(make_panel(design, "p1", "A22", []))
        with pytest.raises(AttributeError):
            proxy.volume()

    def test_read_only(self, design):
        proxy = make_proxy(make_panel(design, "p1", "A22", []))
        with pytest.raises(AttributeError):
            proxy.location = "B16"

    def test_equality_by_instance(self, design):
        instance = make_panel(design, "p1", "A22", [])
        assert make_proxy(instance) == make_proxy(instance)
        other = make_panel(design, "p2", "A22", [])
        assert make_proxy(instance) != make_proxy(other)


class TestProxySet:
    @pytest.fixture
    def panels(self, design):
        self.log = []
        instances = [
            make_panel(design, "p1", "A22", self.log),
            make_panel(design, "p2", "B16", self.log),
            make_panel(design, "p3", "B16", self.log),
        ]
        return make_proxy_set("ParkingEntrancePanel", instances)

    def test_collection_protocol(self, panels):
        assert len(panels) == 3
        assert bool(panels)
        assert panels[0].entity_id == "p1"
        assert panels.entity_ids() == ["p1", "p2", "p3"]

    def test_where_filter(self, panels):
        assert panels.where(location="B16").entity_ids() == ["p2", "p3"]

    def test_dynamic_where_method(self, panels):
        assert panels.where_location("A22").entity_ids() == ["p1"]

    def test_chained_filters(self, panels):
        assert panels.where_location("B16").where_location("A22").entity_ids() == []

    def test_one(self, panels):
        assert panels.where_location("A22").one().entity_id == "p1"

    def test_one_rejects_multiple(self, panels):
        with pytest.raises(DiscoveryError, match="exactly one"):
            panels.where_location("B16").one()

    def test_one_rejects_empty(self, panels):
        with pytest.raises(DiscoveryError):
            panels.where_location("D6").one()

    def test_first(self, panels):
        assert panels.first().entity_id == "p1"
        with pytest.raises(DiscoveryError):
            panels.where_location("D6").first()

    def test_broadcast_action(self, panels):
        results = panels.where_location("B16").update(status="FULL")
        assert set(results) == {"p2", "p3"}
        assert ("p2", "FULL") in self.log and ("p3", "FULL") in self.log

    def test_act_by_diaspec_name(self, panels):
        panels.act("update", status="X")
        assert len(self.log) == 3

    def test_act_on_empty_set_raises(self, panels):
        with pytest.raises(ActuationError, match="no "):
            panels.where_location("D6").act("update", status="X")

    def test_source_gather(self, panels):
        values = panels.brightness()
        assert values == {"p1": 80, "p2": 80, "p3": 80}

    def test_empty_set_dynamic_methods_raise(self, panels):
        empty = panels.where_location("D6")
        with pytest.raises(AttributeError):
            empty.update(status="X")

    def test_figure_11_idiom(self, design):
        """discover.parking_entrance_panels().where_location(lot)
        .update(status) — the exact call shape of Figure 11."""
        log = []
        panels = make_proxy_set(
            "ParkingEntrancePanel",
            [make_panel(design, "p1", "A22", log),
             make_panel(design, "p2", "B16", log)],
        )
        panels.where_location("A22").update(status="FREE: 12")
        assert log == [("p1", "FREE: 12")]
