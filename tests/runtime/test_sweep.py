"""Sweep engine: mode selection, deterministic merge, equivalence.

The load-bearing invariant is that a threaded sweep is observationally
identical to the serial loop — same grouped payloads, same window
closures — for any worker count and batch size; the hypothesis property
here holds the SweepEngine to it.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Application,
    CallableDriver,
    Context,
    RuntimeConfig,
    SimulationClock,
    StalePolicy,
    SupervisionPolicy,
    SweepConfig,
    SweepEngine,
    WallClock,
    analyze,
)
from repro.errors import DeliveryError, DeviceUnavailableError
from repro.runtime.registry import EntityRegistry
from repro.runtime.placement import NetworkConfig
from repro.telemetry import MetricsRegistry

DESIGN = """\
device PresenceSensor {
    attribute parkingLot as LotEnum;
    source presence as Boolean;
}
enumeration LotEnum { A22, B16, D6 }

context FreeCount as Integer {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot
    with map as Boolean reduce as Integer
    always publish;
}

context Windowed as Integer {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot every <30 min>
    always publish;
}
"""

LOTS = ("A22", "B16", "D6")


class FreeCountImpl(Context):
    def __init__(self):
        super().__init__()
        self.deliveries = []

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, True)

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, len(values))

    def on_periodic_presence(self, by_lot, discover):
        self.deliveries.append(dict(by_lot))
        return sum(by_lot.values())


class WindowedImpl(Context):
    def __init__(self):
        super().__init__()
        self.windows = []

    def on_periodic_presence(self, window_by_lot, discover):
        self.windows.append(
            {lot: list(values) for lot, values in window_by_lot.items()}
        )
        return sum(len(v) for v in window_by_lot.values())


def build_app(sweep=None, sensors=6, **config_kwargs):
    """A grouped + windowed periodic app over an interleaved fleet.

    Sensors are registered round-robin across lots so shards interleave
    in registration order — the case where a naive shard-concatenation
    merge would reorder the payload.
    """
    config = RuntimeConfig(
        sweep=sweep if sweep is not None else SweepConfig(),
        **config_kwargs,
    )
    app = Application(analyze(DESIGN), config)
    free = app.implement("FreeCount", FreeCountImpl())
    windowed = app.implement("Windowed", WindowedImpl())
    for index in range(sensors):
        lot = LOTS[index % len(LOTS)]
        app.create_device(
            "PresenceSensor",
            f"s-{index}",
            CallableDriver(sources={"presence": lambda i=index: i % 2 == 0}),
            parkingLot=lot,
        )
    app.start()
    return app, free, windowed


class TestSweepConfig:
    def test_defaults(self):
        config = SweepConfig()
        assert config.mode == "auto"
        assert config.workers == 8
        assert config.batch_size == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "fibrous"},
            {"workers": 0},
            {"batch_size": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SweepConfig(**kwargs)

    def test_runtime_config_rejects_non_sweep_config(self):
        with pytest.raises(TypeError):
            RuntimeConfig(sweep="threaded")

    def test_runtime_config_carries_sweep(self):
        config = RuntimeConfig(sweep=SweepConfig(mode="serial"))
        assert config.sweep.mode == "serial"
        assert "SweepConfig" in config.describe()["sweep"]


class TestModeSelection:
    def test_auto_forces_serial_under_simulation_clock(self):
        engine = SweepEngine(EntityRegistry(), SimulationClock())
        assert engine.mode_for_clock() == "serial"

    def test_auto_selects_threaded_under_wall_clock(self):
        clock = WallClock()
        engine = SweepEngine(EntityRegistry(), clock)
        assert engine.mode_for_clock() == "threaded"
        clock.shutdown()

    def test_explicit_modes_override_the_clock(self):
        registry, clock = EntityRegistry(), SimulationClock()
        assert (
            SweepEngine(
                registry, clock, SweepConfig(mode="threaded")
            ).mode_for_clock()
            == "threaded"
        )
        wall = WallClock()
        assert (
            SweepEngine(
                registry, wall, SweepConfig(mode="serial")
            ).mode_for_clock()
            == "serial"
        )
        wall.shutdown()

    def test_simulation_app_sweeps_serially(self):
        """An app on a SimulationClock with the default (auto) config
        never touches the thread pool: replay stays deterministic."""
        app, free, __ = build_app()
        app.advance(3600)
        stats = app.sweeper.stats()
        assert stats["sweeps"] > 0
        assert stats["threaded_sweeps"] == 0
        assert stats["serial_sweeps"] == stats["sweeps"]
        assert free.deliveries  # the sweeps actually delivered

    def test_forced_threaded_app_uses_the_pool(self):
        app, free, __ = build_app(sweep=SweepConfig(mode="threaded"))
        app.advance(1800)
        stats = app.sweeper.stats()
        assert stats["threaded_sweeps"] == stats["sweeps"] > 0
        assert free.deliveries
        app.stop()  # shuts the pool down


class TestDeterministicMerge:
    def test_threaded_results_in_registry_order(self):
        app, __, __ = build_app(sweep=SweepConfig(mode="threaded"))
        seen = []
        lock = threading.Lock()

        def read_one(instance):
            with lock:
                seen.append(instance.entity_id)
            return instance.entity_id

        results = app.sweeper.sweep("PresenceSensor", read_one)
        merged = [instance.entity_id for instance, __ in results]
        assert merged == [f"s-{i}" for i in range(6)]
        assert sorted(seen) == sorted(merged)
        app.stop()

    def test_iter_shards_positions_reconstruct_registry_order(self):
        app, __, __ = build_app()
        shards = app.registry.iter_shards("PresenceSensor")
        assert sorted(key for key, __ in shards) == sorted(LOTS)
        flattened = sorted(
            (pos, inst.entity_id)
            for __, members in shards
            for pos, inst in members
        )
        assert [entity for __, entity in flattened] == [
            f"s-{i}" for i in range(6)
        ]
        # Within a shard, members keep registration order.
        for __, members in shards:
            positions = [pos for pos, __ in members]
            assert positions == sorted(positions)

    def test_shard_attribute_override_and_attribute_less_types(self):
        app, __, __ = build_app()
        shards = app.registry.iter_shards(
            "PresenceSensor", attribute="parkingLot"
        )
        assert {key for key, __ in shards} == set(LOTS)


@settings(max_examples=12, deadline=None)
@given(
    workers=st.integers(min_value=1, max_value=12),
    batch_size=st.integers(min_value=1, max_value=24),
    sensors=st.integers(min_value=1, max_value=17),
)
def test_serial_and_threaded_sweeps_are_equivalent(
    workers, batch_size, sensors
):
    """Grouped payloads and window closures are identical between the
    serial loop and the thread-pool fan-out for any worker count and
    batch size — the merge-order guarantee, end to end."""
    serial_app, serial_free, serial_windowed = build_app(
        sweep=SweepConfig(mode="serial"), sensors=sensors
    )
    threaded_app, threaded_free, threaded_windowed = build_app(
        sweep=SweepConfig(
            mode="threaded", workers=workers, batch_size=batch_size
        ),
        sensors=sensors,
    )
    serial_app.advance(3600)
    threaded_app.advance(3600)
    assert serial_free.deliveries == threaded_free.deliveries
    assert serial_windowed.windows == threaded_windowed.windows
    assert serial_free.deliveries  # six sweeps happened
    threaded_app.stop()


class TestGatherErrorSplit:
    def test_read_failures_count_separately(self):
        app, free, __ = build_app(
            supervision=SupervisionPolicy(
                failure_threshold=100, quarantine_after=None
            ),
            stale=StalePolicy("skip"),
        )
        app.registry.get("s-0").driver._sources["presence"] = _raise
        app.advance(600)
        assert app.stats["gather_read_failed"] > 0
        assert app.stats["gather_network_dropped"] == 0
        assert app.stats["gather_errors"] == (
            app.stats["gather_read_failed"]
        )
        assert app.metrics.value("app_gather_read_failed_total") == (
            app.stats["gather_read_failed"]
        )
        assert app.metrics.value("app_gather_errors_total") == (
            app.stats["gather_errors"]
        )

    def test_network_drops_count_separately(self):
        app, free, __ = build_app(
            network=NetworkConfig(loss=0.999, seed=1, apply_to_reads=True),
        )
        app.advance(600)
        assert app.stats["gather_network_dropped"] > 0
        assert app.stats["gather_read_failed"] == 0
        assert app.metrics.value("app_gather_network_dropped_total") == (
            app.stats["gather_network_dropped"]
        )
        assert app.stats["gather_errors"] == (
            app.stats["gather_network_dropped"]
        )

    def test_fail_mode_still_propagates_through_the_engine(self):
        app, __, __ = build_app(
            supervision=SupervisionPolicy(failure_threshold=100),
            stale=StalePolicy("fail"),
        )
        app.registry.get("s-0").driver._sources["presence"] = _raise
        with pytest.raises(DeviceUnavailableError):
            app.advance(600)


def _raise():
    raise DeliveryError("sensor is dark")


class TestSweepMetrics:
    def test_engine_exports_histogram_gauge_and_shard_counters(self):
        metrics = MetricsRegistry()
        app, __, __ = build_app(metrics=metrics)
        app.advance(600)
        assert metrics.get("sweep_duration_seconds").kind == "histogram"
        duration = metrics.get("sweep_duration_seconds").samples()[0][1]
        assert duration.count == app.sweeper.stats()["sweeps"]
        assert metrics.value("sweep_in_flight_batches") == 0
        per_shard = {
            dict(labels)["shard"]: instrument.value
            for labels, instrument in metrics.get(
                "sweep_shard_reads_total"
            ).samples()
        }
        assert set(per_shard) == set(LOTS)
        assert sum(per_shard.values()) == app.sweeper.stats()["reads"]


class TestInstancesOfKeywordShim:
    def test_positional_filters_warn_and_still_work(self):
        app, __, __ = build_app()
        registry = app.registry
        with pytest.warns(DeprecationWarning, match="positionally"):
            shimmed = registry.instances_of("PresenceSensor", True)
        assert shimmed == registry.instances_of(
            "PresenceSensor", include_failed=True
        )

    def test_positional_and_keyword_duplicate_raises(self):
        app, __, __ = build_app()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                app.registry.instances_of(
                    "PresenceSensor", True, include_failed=True
                )

    def test_too_many_positionals_raise(self):
        app, __, __ = build_app()
        with pytest.raises(TypeError, match="positional"):
            app.registry.instances_of(
                "PresenceSensor", True, None, False, "extra"
            )

    def test_attribute_filters_stay_keyword(self):
        app, __, __ = build_app()
        matches = app.registry.instances_of(
            "PresenceSensor", parkingLot="A22"
        )
        assert [m.entity_id for m in matches] == ["s-0", "s-3"]
