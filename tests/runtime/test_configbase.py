"""The shared ConfigBase protocol across the whole config family."""

import dataclasses

import pytest

from repro.faults.policy import StalePolicy, SupervisionPolicy
from repro.runtime.cache import CacheConfig
from repro.runtime.clock import SimulationClock
from repro.runtime.config import RuntimeConfig
from repro.runtime.configbase import ConfigBase, encode_config_value
from repro.runtime.placement import (
    EdgeNode,
    NetworkConfig,
    PlacementConfig,
    Tier,
)
from repro.runtime.plan import BatchConfig
from repro.runtime.shard import ShardConfig
from repro.runtime.sweep import SweepConfig
from repro.runtime.tuning import TuningConfig
from repro.simulation.network import HopProfile

SECTION_TYPES = (
    SweepConfig,
    CacheConfig,
    BatchConfig,
    ShardConfig,
    PlacementConfig,
    NetworkConfig,
    TuningConfig,
)


class TestProtocolAdoption:
    @pytest.mark.parametrize("config_type", SECTION_TYPES)
    def test_every_section_speaks_configbase(self, config_type):
        assert issubclass(config_type, ConfigBase)
        assert issubclass(RuntimeConfig, ConfigBase)

    @pytest.mark.parametrize("config_type", SECTION_TYPES)
    def test_default_sections_round_trip(self, config_type):
        config = config_type()
        rebuilt = config_type.from_dict(config.to_dict())
        assert rebuilt == config

    def test_to_dict_is_json_able(self):
        import json

        config = RuntimeConfig(
            supervision=SupervisionPolicy(failure_threshold=2),
            supervision_overrides={"Sensor": SupervisionPolicy()},
            stale=StalePolicy("last_known", max_age_seconds=60.0),
            network=NetworkConfig(
                hops={
                    "access": HopProfile(latency=1.0),
                    "wan": HopProfile(latency=4.0),
                }
            ),
            placement=PlacementConfig(
                enabled=True,
                edge_nodes=(
                    EdgeNode(node_id="edge-0", values=("a", "b")),
                ),
            ),
            tuning=TuningConfig(knobs=("sweep.workers",)),
        )
        json.dumps(config.to_dict())  # must not raise


class TestRuntimeConfigRoundTrip:
    def test_full_round_trip_including_policies(self):
        config = RuntimeConfig(
            error_policy="isolate",
            supervision=SupervisionPolicy(failure_threshold=2),
            supervision_overrides={
                "Sensor": SupervisionPolicy(backoff_base_seconds=7.0)
            },
            stale=StalePolicy("last_known", max_age_seconds=60.0),
            sweep=SweepConfig(mode="threaded", workers=4),
            batch=BatchConfig(enabled=True, min_column=16),
            tuning=TuningConfig(
                enabled=True,
                interval_seconds=120.0,
                knobs=("sweep.workers",),
            ),
        )
        rebuilt = RuntimeConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert isinstance(rebuilt.supervision, SupervisionPolicy)
        assert isinstance(
            rebuilt.supervision_overrides["Sensor"], SupervisionPolicy
        )
        assert isinstance(rebuilt.stale, StalePolicy)
        assert isinstance(rebuilt.tuning, TuningConfig)
        assert rebuilt.tuning.knobs == ("sweep.workers",)

    def test_runtime_objects_are_omitted_and_overridable(self):
        clock = SimulationClock()
        config = RuntimeConfig(clock=clock)
        encoded = config.to_dict()
        assert "clock" not in encoded
        assert "metrics" not in encoded
        assert "mapreduce_executor" not in encoded
        rebuilt = RuntimeConfig.from_dict(encoded, clock=clock)
        assert rebuilt.clock is clock

    def test_network_hops_round_trip(self):
        config = RuntimeConfig(
            network=NetworkConfig(
                hops={
                    "access": HopProfile(latency=1.0, loss=0.1),
                    "wan": HopProfile(latency=4.0),
                }
            )
        )
        rebuilt = RuntimeConfig.from_dict(config.to_dict())
        assert rebuilt == config
        hops = dict(rebuilt.network.hops)
        assert hops["access"] == HopProfile(latency=1.0, loss=0.1)

    def test_placement_tier_round_trip(self):
        config = PlacementConfig(
            enabled=True,
            default_tier=Tier.EDGE,
            edge_nodes=(EdgeNode(node_id="e0", values=("x",)),),
        )
        rebuilt = PlacementConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.default_tier is Tier.EDGE

    def test_unknown_keys_are_a_type_error(self):
        with pytest.raises(TypeError, match="wibble"):
            RuntimeConfig.from_dict({"wibble": 1})
        with pytest.raises(TypeError, match="wobble"):
            SweepConfig.from_dict({"wobble": "threaded"})


class TestValidatedReplace:
    def test_replace_reruns_full_validation(self):
        # Regression: ``dataclasses.replace`` alone would assemble a
        # flat-latency x hops NetworkConfig that construction rejects.
        flat = NetworkConfig(latency=2.0)
        with pytest.raises(ValueError):
            NetworkConfig(
                latency=2.0, hops={"wan": HopProfile(latency=1.0)}
            )
        with pytest.raises(ValueError):
            flat.replace(hops={"wan": HopProfile(latency=1.0)})

    def test_runtime_config_replace_revalidates_sections(self):
        base = RuntimeConfig()
        with pytest.raises(TypeError, match="SweepConfig"):
            base.replace(sweep="threaded")
        with pytest.raises(TypeError, match="TuningConfig"):
            base.replace(tuning=True)
        with pytest.raises(ValueError, match="error_policy"):
            base.replace(error_policy="pray")

    def test_replace_keeps_untouched_fields(self):
        base = RuntimeConfig(sweep=SweepConfig(mode="threaded", workers=4))
        bumped = base.replace(
            sweep=base.sweep.replace(workers=8)
        )
        assert bumped.sweep.workers == 8
        assert bumped.sweep.mode == "threaded"
        assert base.sweep.workers == 4


class TestEncodeConfigValue:
    def test_atoms_pass_through(self):
        assert encode_config_value(3) == 3
        assert encode_config_value("x") == "x"
        assert encode_config_value(None) is None

    def test_dataclasses_and_enums_encode_structurally(self):
        assert encode_config_value(Tier.EDGE) == Tier.EDGE.value
        encoded = encode_config_value(HopProfile(latency=2.0))
        assert encoded["latency"] == 2.0

    def test_runtime_objects_are_rejected(self):
        with pytest.raises(TypeError, match="not encodable"):
            encode_config_value(SimulationClock())


class TestIdempotentPostInit:
    @pytest.mark.parametrize("config_type", SECTION_TYPES)
    def test_validate_is_idempotent(self, config_type):
        config = config_type()
        config.validate()
        config.validate()
        assert config == config_type()

    def test_tuning_knobs_survive_revalidation(self):
        # TuningConfig.__post_init__ coerces knobs to a tuple; running
        # it again on an already-coerced instance must be a no-op.
        config = TuningConfig(knobs=["sweep.workers"])
        assert config.knobs == ("sweep.workers",)
        config.validate()
        assert config.knobs == ("sweep.workers",)


def test_section_fields_have_decoders_where_needed():
    """Every nested-config field of RuntimeConfig decodes from plain
    dicts — from_dict(to_dict()) must rebuild rich types, not dicts."""
    config = RuntimeConfig()
    rebuilt = RuntimeConfig.from_dict(config.to_dict())
    for f in dataclasses.fields(RuntimeConfig):
        if f.name in RuntimeConfig._runtime_fields:
            continue
        original = getattr(config, f.name)
        restored = getattr(rebuilt, f.name)
        assert type(restored) is type(original), f.name
