"""Knobs, the registry, the adaptive controller, and live config swaps."""

import pytest

from repro.errors import TuningError
from repro.faults.policy import SupervisionPolicy
from repro.runtime.app import Application
from repro.runtime.cache import CacheConfig
from repro.runtime.clock import SimulationClock
from repro.runtime.config import RuntimeConfig
from repro.runtime.plan import BatchConfig
from repro.runtime.sweep import SweepConfig
from repro.runtime.tuning import (
    DOWN,
    UP,
    Knob,
    KnobRegistry,
    TuningConfig,
    TuningController,
)


def make_app(**config_kwargs):
    config_kwargs.setdefault("clock", SimulationClock())
    return Application(
        __import__("repro.sema.analyzer", fromlist=["analyze"]).analyze(
            DESIGN
        ),
        RuntimeConfig(**config_kwargs),
    )


DESIGN = """\
device Sensor {
    source reading as Float;
}

context Echo as Float {
    when provided reading from Sensor
    always publish;
}
"""


def workers_knob(minimum=1, maximum=4):
    return Knob(
        name="sweep.workers",
        section="sweep",
        attribute="workers",
        minimum=minimum,
        maximum=maximum,
        step=1,
        scale="linear",
    )


class ScriptedObjective:
    """Cumulative-cost callable fed one per-interval level at a time."""

    def __init__(self):
        self.total = 0.0

    def __call__(self):
        return self.total

    def feed(self, controller, level):
        self.total += level
        controller.tick()


def make_controller(app, knob=None, **overrides):
    registry = KnobRegistry([knob or workers_knob()])
    overrides.setdefault("warmup_intervals", 1)
    config = TuningConfig(
        enabled=True, objective="custom", epsilon=0.0, **overrides
    )
    controller = TuningController(app, config, registry=registry)
    objective = ScriptedObjective()
    controller.set_objective(objective)
    controller.tick()  # priming tick: establishes the cumulative anchor
    return controller, objective


class TestKnobArithmetic:
    def test_clamp_bounds_and_integer_domain(self):
        knob = workers_knob(minimum=1, maximum=8)
        assert knob.clamp(0) == 1
        assert knob.clamp(100) == 8
        assert knob.clamp(3.4) == 3

    def test_linear_steps(self):
        knob = workers_knob(minimum=1, maximum=4)
        assert knob.step_toward(2, UP) == 3
        assert knob.step_toward(2, DOWN) == 1
        assert knob.step_toward(4, UP) == 4  # clamped no-op
        assert knob.step_toward(1, DOWN) == 1

    def test_geometric_steps(self):
        knob = Knob(
            name="batch.min_column",
            section="batch",
            attribute="min_column",
            minimum=2,
            maximum=128,
            step=8,
            scale="geometric",
        )
        assert knob.step_toward(2, UP) == 16
        assert knob.step_toward(16, UP) == 128
        assert knob.step_toward(128, UP) == 128
        assert knob.step_toward(16, DOWN) == 2

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            workers_knob().step_toward(2, "sideways")

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="geometric step"):
            Knob(
                name="x", section="sweep", attribute="workers",
                minimum=1, maximum=4, step=1, scale="geometric",
            )
        with pytest.raises(ValueError, match="exceeds"):
            Knob(
                name="x", section="sweep", attribute="workers",
                minimum=9, maximum=4,
            )

    def test_apply_derives_a_revalidated_copy(self):
        config = RuntimeConfig()
        knob = workers_knob(minimum=1, maximum=64)
        bumped = knob.apply(config, 99)  # clamped into range
        assert bumped.sweep.workers == 64
        assert config.sweep.workers == SweepConfig().workers

    def test_apply_on_missing_section_is_a_tuning_error(self):
        knob = Knob(
            name="supervision.failure_threshold",
            section="supervision",
            attribute="failure_threshold",
            minimum=1,
            maximum=10,
        )
        with pytest.raises(TuningError, match="not enabled"):
            knob.apply(RuntimeConfig(), 2)


class TestKnobRegistry:
    def test_duplicate_registration_rejected(self):
        registry = KnobRegistry([workers_knob()])
        with pytest.raises(TuningError, match="already registered"):
            registry.register(workers_knob())

    def test_unknown_name_lists_known_knobs(self):
        registry = KnobRegistry([workers_knob()])
        with pytest.raises(TuningError, match="sweep.workers"):
            registry.get("cache.ttl_seconds")

    def test_with_value_leaves_original_untouched(self):
        registry = KnobRegistry([workers_knob(maximum=64)])
        config = RuntimeConfig()
        bumped = registry.with_value(config, "sweep.workers", 4)
        assert bumped.sweep.workers == 4
        assert config.sweep.workers == SweepConfig().workers

    def test_catalog_follows_enabled_subsystems(self):
        base = KnobRegistry.for_config(RuntimeConfig())
        assert base.names() == ("sweep.workers", "sweep.batch_size")

        full = KnobRegistry.for_config(
            RuntimeConfig(
                batch=BatchConfig(enabled=True),
                cache=CacheConfig(enabled=True),
                supervision=SupervisionPolicy(),
            )
        )
        assert "batch.min_column" in full
        assert "cache.ttl_seconds" in full
        assert "supervision.failure_threshold" in full
        assert "supervision.backoff_base_seconds" in full
        assert "shard.delta_sync" not in full

        from repro.runtime.shard import ShardConfig

        sharded = KnobRegistry.for_config(
            RuntimeConfig(shard=ShardConfig(enabled=True))
        )
        assert "shard.delta_sync" in sharded
        flipped = sharded.with_value(
            RuntimeConfig(shard=ShardConfig(enabled=True)),
            "shard.delta_sync",
            0,
        )
        assert flipped.shard.delta_sync is False

    def test_describe_carries_ranges_and_values(self):
        registry = KnobRegistry.for_config(RuntimeConfig())
        rows = registry.describe(RuntimeConfig())
        by_name = {row["name"]: row for row in rows}
        assert by_name["sweep.workers"]["value"] == SweepConfig().workers
        assert by_name["sweep.workers"]["minimum"] == 1


class TestControllerLifecycle:
    def test_unknown_knob_fails_at_wiring_time(self):
        app = make_app()
        with pytest.raises(TuningError, match="unknown knob"):
            TuningController(
                app,
                TuningConfig(enabled=True, knobs=("no.such.knob",)),
            )

    def test_custom_objective_required_before_start(self):
        app = make_app()
        controller = TuningController(
            app,
            TuningConfig(enabled=True, objective="custom"),
            registry=KnobRegistry([workers_knob()]),
        )
        with pytest.raises(TuningError, match="set_objective"):
            controller.start()

    def test_enabled_config_wires_and_ticks(self):
        from repro.runtime.component import Context

        class Echo(Context):
            def on_reading_from_sensor(self, event, discover):
                return event.value

        app = make_app(
            tuning=TuningConfig(
                enabled=True,
                interval_seconds=10.0,
                objective="gather_errors",
            )
        )
        assert app.tuner is not None
        app.implement("Echo", Echo())
        app.start()
        app.advance(30.0)
        assert app.metrics.value("tuning_ticks_total") == 3
        app.stop()

    def test_disabled_config_creates_no_controller(self):
        app = make_app()
        assert app.tuner is None
        assert app.knobs.names() == ("sweep.workers", "sweep.batch_size")


class TestControllerPolicy:
    def test_warmup_then_settled(self):
        controller, objective = make_controller(make_app())
        objective.feed(controller, 10.0)
        assert controller.phase == "warmup"
        objective.feed(controller, 10.0)
        assert controller.phase == "settled"
        assert controller.stats()["adjustments"] == {}

    def test_settled_absorbs_in_band_drift(self):
        controller, objective = make_controller(make_app())
        for level in (10.0, 10.0, 11.0, 10.0, 12.0):
            objective.feed(controller, level)
        assert controller.phase == "settled"
        assert controller.stats()["drifts"] == 0
        assert controller.stats()["adjustments"] == {}

    def test_drift_opens_search_and_proposes(self):
        app = make_app(sweep=SweepConfig(workers=2))
        controller, objective = make_controller(app)
        for level in (10.0, 10.0):
            objective.feed(controller, level)
        objective.feed(controller, 100.0)  # >25% drift
        assert controller.phase == "searching"
        assert controller.stats()["drifts"] == 1
        # Greedy over untried moves picks the first candidate: DOWN.
        assert app.config.sweep.workers == 1

    def test_regression_rolls_back_and_cools_down(self):
        app = make_app(sweep=SweepConfig(workers=2))
        controller, objective = make_controller(app)
        for level in (10.0, 10.0, 100.0):
            objective.feed(controller, level)
        assert app.config.sweep.workers == 1
        objective.feed(controller, 200.0)  # regression beyond 5%
        assert app.config.sweep.workers == 2  # rolled back
        assert controller.stats()["rollbacks"] == 1
        # The knob cools down; with only one knob nothing is proposable
        # on the next tick, so the search closes.
        objective.feed(controller, 100.0)
        assert controller.phase == "settled"
        assert app.config.sweep.workers == 2

    def test_improvement_keeps_momentum_to_the_bound(self):
        app = make_app(sweep=SweepConfig(workers=3))
        controller, objective = make_controller(app)
        for level in (10.0, 10.0):
            objective.feed(controller, level)
        objective.feed(controller, 100.0)  # drift -> try workers 3->2
        assert app.config.sweep.workers == 2
        objective.feed(controller, 80.0)  # improvement -> momentum 2->1
        assert app.config.sweep.workers == 1
        objective.feed(controller, 60.0)  # at the bound: search closes
        assert controller.phase == "settled"
        assert app.config.sweep.workers == 1
        assert controller.stats()["adjustments"] == {
            "sweep.workers:down": 2
        }

    def test_zero_epsilon_is_deterministic(self):
        def run():
            app = make_app(sweep=SweepConfig(workers=3))
            controller, objective = make_controller(app)
            for level in (10.0, 10.0, 100.0, 80.0, 120.0, 90.0, 90.0):
                objective.feed(controller, level)
            return (
                app.config.sweep.workers,
                controller.stats()["adjustments"],
                [
                    (row["knob"], row["event"], row["value"])
                    for row in controller.trajectory
                ],
            )

        assert run() == run()

    def test_metrics_track_the_loop(self):
        app = make_app(sweep=SweepConfig(workers=2))
        registry = KnobRegistry([workers_knob()])
        config = TuningConfig(
            enabled=True, objective="custom", warmup_intervals=1
        )
        controller = TuningController(app, config, registry=registry)
        controller.attach_metrics(app.metrics)
        objective = ScriptedObjective()
        controller.set_objective(objective)
        controller.tick()
        for level in (10.0, 10.0, 100.0, 200.0):
            objective.feed(controller, level)
        metrics = app.metrics
        assert metrics.value("tuning_ticks_total") == 5
        assert metrics.value("tuning_rollbacks_total") == 1
        assert metrics.value("tuning_drifts_total") == 1
        assert (
            metrics.value(
                "tuning_adjustments_total",
                knob="sweep.workers",
                direction="down",
            )
            == 1
        )
        assert (
            metrics.value("tuning_knob_value", knob="sweep.workers") == 2.0
        )


class TestApplyConfig:
    def test_live_sections_swap_atomically(self):
        app = make_app()
        swapped = app.config.replace(
            sweep=app.config.sweep.replace(workers=32),
            error_policy="isolate",
        )
        app.apply_config(swapped)
        assert app.config.sweep.workers == 32
        assert app.error_policy == "isolate"
        assert app.sweeper.config.workers == 32

    def test_structural_fields_cannot_change(self):
        app = make_app()
        with pytest.raises(TuningError, match="structural"):
            app.apply_config(app.config.replace(name="other"))
        with pytest.raises(TuningError, match="structural"):
            app.apply_config(app.config.replace(streaming_windows=False))

    def test_cache_cannot_toggle_live(self):
        app = make_app()
        with pytest.raises(TuningError, match="cache"):
            app.apply_config(
                app.config.replace(cache=CacheConfig(enabled=True))
            )

    def test_batch_only_tunes_min_column_live(self):
        app = make_app(batch=BatchConfig(enabled=True, min_column=4))
        app.apply_config(
            app.config.replace(
                batch=app.config.batch.replace(min_column=64)
            )
        )
        assert app.config.batch.min_column == 64
        with pytest.raises(TuningError, match="min_column"):
            app.apply_config(
                app.config.replace(batch=BatchConfig(enabled=False))
            )

    def test_supervision_cannot_toggle_but_retunes(self):
        app = make_app(
            supervision=SupervisionPolicy(failure_threshold=5)
        )
        app.apply_config(
            app.config.replace(
                supervision=SupervisionPolicy(failure_threshold=1)
            )
        )
        assert app.supervision.default_policy.failure_threshold == 1
        with pytest.raises(TuningError, match="supervision"):
            app.apply_config(app.config.replace(supervision=None))

    def test_supervisors_pick_up_the_new_policy(self):
        app = make_app(
            supervision=SupervisionPolicy(failure_threshold=5)
        )
        from repro.runtime.device import CallableDriver

        app.create_device(
            "Sensor", "s-1", CallableDriver(sources={"reading": lambda: 1.0})
        )
        supervisor = app.supervision.supervisor("s-1")
        assert supervisor.policy.failure_threshold == 5
        app.apply_config(
            app.config.replace(
                supervision=SupervisionPolicy(failure_threshold=1)
            )
        )
        assert supervisor.policy.failure_threshold == 1
        assert supervisor.breaker.policy.failure_threshold == 1
