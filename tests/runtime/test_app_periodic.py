"""Periodic gathering: polling, grouping, MapReduce, windows, queries."""

from repro.mapreduce.engine import ThreadExecutor
from repro.runtime.app import Application
from repro.runtime.config import RuntimeConfig
from repro.runtime.component import Context
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

DESIGN = """\
device PresenceSensor {
    attribute parkingLot as LotEnum;
    source presence as Boolean;
}
enumeration LotEnum { A22, B16 }

context FreeCount as Integer {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot
    with map as Boolean reduce as Integer
    always publish;
}

context RawSweep as Integer {
    when periodic presence from PresenceSensor <10 min>
    always publish;
}

context Windowed as Integer {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot every <30 min>
    always publish;
}

context OnDemand as Integer {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot
    no publish;
    when required;
}
"""


class FreeCountImpl(Context):
    def __init__(self):
        super().__init__()
        self.deliveries = []

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, True)

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, len(values))

    def on_periodic_presence(self, by_lot, discover):
        self.deliveries.append(dict(by_lot))
        return sum(by_lot.values())


class RawSweepImpl(Context):
    def __init__(self):
        super().__init__()
        self.sweeps = []

    def on_periodic_presence(self, readings, discover):
        self.sweeps.append(readings)
        return len(readings)


class WindowedImpl(Context):
    def __init__(self):
        super().__init__()
        self.windows = []

    def on_periodic_presence(self, window_by_lot, discover):
        self.windows.append(window_by_lot)
        return sum(len(v) for v in window_by_lot.values())


class OnDemandImpl(Context):
    def __init__(self):
        super().__init__()
        self.state = 0

    def on_periodic_presence(self, by_lot, discover):
        self.state = sum(len(v) for v in by_lot.values())
        return None

    def when_required(self, discover):
        return self.state


def build(executor=None):
    app = Application(
        analyze(DESIGN), RuntimeConfig(mapreduce_executor=executor)
    )
    app.implement("FreeCount", FreeCountImpl())
    app.implement("RawSweep", RawSweepImpl())
    app.implement("Windowed", WindowedImpl())
    app.implement("OnDemand", OnDemandImpl())
    occupancy = {}
    for lot, count in [("A22", 3), ("B16", 2)]:
        for index in range(count):
            sid = f"{lot}-{index}"
            occupancy[sid] = index == 0  # first space of each lot occupied
            app.create_device(
                "PresenceSensor",
                sid,
                CallableDriver(
                    sources={"presence": (lambda s=sid: occupancy[s])}
                ),
                parkingLot=lot,
            )
    app.start()
    return app, occupancy


class TestGroupedMapReduce:
    def test_figure_10_semantics(self):
        app, __ = build()
        app.advance(600)
        free_count = app.implementation("FreeCount")
        assert free_count.deliveries == [{"A22": 2, "B16": 1}]

    def test_period_respected(self):
        app, __ = build()
        app.advance(599)
        assert app.implementation("FreeCount").deliveries == []
        app.advance(1)
        assert len(app.implementation("FreeCount").deliveries) == 1
        app.advance(1200)
        assert len(app.implementation("FreeCount").deliveries) == 3

    def test_readings_reflect_current_state(self):
        app, occupancy = build()
        app.advance(600)
        for key in occupancy:
            occupancy[key] = True  # everything occupied now
        app.advance(600)
        assert app.implementation("FreeCount").deliveries[-1] == {}

    def test_thread_executor_equivalent(self):
        serial_app, __ = build()
        thread_app, __ = build(executor=ThreadExecutor(workers=4))
        serial_app.advance(600)
        thread_app.advance(600)
        assert (
            serial_app.implementation("FreeCount").deliveries
            == thread_app.implementation("FreeCount").deliveries
        )


class TestUngroupedSweep:
    def test_readings_are_gather_readings(self):
        app, __ = build()
        app.advance(600)
        (sweep,) = app.implementation("RawSweep").sweeps
        assert len(sweep) == 5
        assert {r.device.entity_id for r in sweep} == {
            "A22-0", "A22-1", "A22-2", "B16-0", "B16-1",
        }
        assert all(isinstance(r.value, bool) for r in sweep)


class TestWindowedAccumulation:
    def test_window_fires_once_per_three_periods(self):
        app, __ = build()
        app.advance(1800)
        windowed = app.implementation("Windowed")
        assert len(windowed.windows) == 1
        window = windowed.windows[0]
        # 3 deliveries x 3 sensors for A22, x 2 for B16
        assert len(window["A22"]) == 9
        assert len(window["B16"]) == 6

    def test_windows_do_not_overlap(self):
        app, __ = build()
        app.advance(3600)
        assert len(app.implementation("Windowed").windows) == 2


class TestQueryDriven:
    def test_when_required_served_and_checked(self):
        app, __ = build()
        app.advance(600)
        assert app.query_context("OnDemand") == 5

    def test_failed_sensor_skipped_in_sweep(self):
        app, __ = build()
        app.registry.get("A22-0").fail()
        app.advance(600)
        (sweep,) = app.implementation("RawSweep").sweeps
        assert len(sweep) == 4
        assert app.stats["gather_errors"] == 0  # hidden, not errored

    def test_runtime_bound_sensor_joins_next_sweep(self):
        app, __ = build()
        app.advance(600)
        app.create_device(
            "PresenceSensor",
            "A22-99",
            CallableDriver(sources={"presence": lambda: False}),
            parkingLot="A22",
        )
        app.advance(600)
        sweeps = app.implementation("RawSweep").sweeps
        assert len(sweeps[0]) == 5
        assert len(sweeps[1]) == 6
