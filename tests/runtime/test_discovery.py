"""The discover façade: device accessors and context queries."""

import pytest

from repro.errors import DiscoveryError
from repro.runtime.device import CallableDriver, DeviceInstance
from repro.runtime.discovery import Discover
from repro.runtime.registry import EntityRegistry
from repro.sema.analyzer import analyze

DESIGN = """\
device DisplayPanel { action update(status as String); }
device ParkingEntrancePanel extends DisplayPanel {
    attribute location as LotEnum;
}
device PresenceSensor {
    attribute parkingLot as LotEnum;
    source presence as Boolean;
}
enumeration LotEnum { A22, B16 }
context Usage as Float { when required; }
"""


@pytest.fixture
def design():
    return analyze(DESIGN)


@pytest.fixture
def registry():
    return EntityRegistry()


@pytest.fixture
def discover(design, registry):
    return Discover(design, registry, context_query=lambda name: 0.5)


def bind_panel(design, registry, entity_id, lot):
    registry.register(
        DeviceInstance(
            design.devices["ParkingEntrancePanel"],
            entity_id,
            CallableDriver(actions={"update": lambda status: None}),
            {"location": lot},
        )
    )


class TestDeviceDiscovery:
    def test_devices_by_name(self, design, registry, discover):
        bind_panel(design, registry, "p1", "A22")
        assert len(discover.devices("ParkingEntrancePanel")) == 1

    def test_snake_case_accessor(self, design, registry, discover):
        bind_panel(design, registry, "p1", "A22")
        panels = discover.parking_entrance_panels()
        assert panels.entity_ids() == ["p1"]

    def test_accessor_with_attribute_filter(self, design, registry, discover):
        bind_panel(design, registry, "p1", "A22")
        bind_panel(design, registry, "p2", "B16")
        assert discover.devices(
            "ParkingEntrancePanel", location="B16"
        ).entity_ids() == ["p2"]

    def test_supertype_accessor_sees_subtypes(self, design, registry,
                                              discover):
        bind_panel(design, registry, "p1", "A22")
        assert len(discover.display_panels()) == 1

    def test_unknown_device_type(self, discover):
        with pytest.raises(DiscoveryError):
            discover.devices("Toaster")

    def test_unknown_accessor(self, discover):
        with pytest.raises(AttributeError):
            discover.toasters()

    def test_device_by_entity_id(self, design, registry, discover):
        bind_panel(design, registry, "p1", "A22")
        assert discover.device("p1").entity_id == "p1"

    def test_runtime_binding_is_visible_immediately(self, design, registry,
                                                    discover):
        assert len(discover.parking_entrance_panels()) == 0
        bind_panel(design, registry, "p1", "A22")
        assert len(discover.parking_entrance_panels()) == 1


class TestContextQueries:
    def test_queryable_context(self, discover):
        assert discover.context_value("Usage") == 0.5

    def test_unknown_context(self, discover):
        with pytest.raises(DiscoveryError):
            discover.context_value("Ghost")

    def test_unqueryable_context_rejected(self, design, registry):
        design2 = analyze(
            "device S { source s as Float; }\n"
            "context C as Float { when provided s from S always publish; }"
        )
        discover = Discover(design2, registry, context_query=lambda n: 1.0)
        with pytest.raises(DiscoveryError, match="when required"):
            discover.context_value("C")

    def test_disconnected_discover_rejects_queries(self, design, registry):
        discover = Discover(design, registry)
        with pytest.raises(DiscoveryError, match="not connected"):
            discover.context_value("Usage")
