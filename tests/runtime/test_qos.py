"""The QoS/error-handling extension (§VI's non-functional dimensions).

``expect deadline <...>`` on contexts/controllers and ``expect timeout
<...> retry N`` on device sources.
"""

import time

import pytest

from repro.errors import DeliveryError
from repro.lang.ast_nodes import Duration
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.runtime.app import Application
from repro.runtime.component import Context, Controller
from repro.runtime.device import CallableDriver, DeviceDriver
from repro.runtime.qos import ComponentQoS, QoSMonitor
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor {
    source reading as Float expect retry 2;
    source slow as Float expect timeout <5 ms>;
}
device Siren { action sound(level as Integer); }

context Watch as Float {
    expect deadline <20 ms>;

    when provided reading from Sensor
    always publish;
}

controller K {
    expect deadline <20 ms>;

    when provided Watch
    do sound on Siren;
}
"""


class TestParsingExpectClauses:
    def test_source_retry(self):
        spec = parse(DESIGN)
        sensor = spec.devices[0]
        assert sensor.sources[0].retries == 2
        assert sensor.sources[0].timeout is None

    def test_source_timeout(self):
        spec = parse(DESIGN)
        slow = spec.devices[0].sources[1]
        assert slow.timeout == Duration(5, "ms")
        assert slow.retries == 0

    def test_both_timeout_and_retry(self):
        spec = parse(
            "device D { source s as Float expect timeout <1 s> retry 3; }"
        )
        source = spec.devices[0].sources[0]
        assert source.timeout == Duration(1, "s")
        assert source.retries == 3

    def test_context_deadline(self):
        spec = parse(DESIGN)
        watch = spec.contexts[0]
        assert watch.deadline == Duration(20, "ms")

    def test_controller_deadline(self):
        spec = parse(DESIGN)
        assert spec.controllers[0].deadline == Duration(20, "ms")

    def test_roundtrip(self):
        spec = parse(DESIGN)
        assert parse(pretty(spec)) == spec

    def test_empty_expect_rejected(self):
        with pytest.raises(Exception, match="timeout|retry"):
            parse("device D { source s as Float expect; }")

    def test_duplicate_deadline_rejected(self):
        with pytest.raises(Exception, match="duplicate"):
            parse(
                "context C as Float { expect deadline <1 ms>; "
                "expect deadline <2 ms>; when required; }"
            )

    def test_fractional_retry_rejected(self):
        with pytest.raises(Exception, match="integer"):
            parse("device D { source s as Float expect retry 1.5; }")

    def test_analyzer_carries_policy(self):
        design = analyze(DESIGN)
        source = design.devices["Sensor"].sources["reading"]
        assert source.retries == 2
        slow = design.devices["Sensor"].sources["slow"]
        assert slow.timeout_seconds == pytest.approx(0.005)


class FlakyDriver(DeviceDriver):
    """Fails the first N reads, then serves."""

    def __init__(self, failures):
        self.failures = failures
        self.attempts = 0

    def read_reading(self):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise DeliveryError("transient sensor glitch")
        return 1.5

    def read_slow(self):
        time.sleep(0.02)  # exceeds the 5 ms timeout
        return 2.0


class WatchImpl(Context):
    def on_reading_from_sensor(self, event, discover):
        return event.value


class SlowWatch(Context):
    def on_reading_from_sensor(self, event, discover):
        time.sleep(0.03)  # exceeds the 20 ms deadline
        return event.value


class KImpl(Controller):
    def on_watch(self, value, discover):
        pass


def build(watch=None):
    app = Application(analyze(DESIGN))
    app.implement("Watch", watch or WatchImpl())
    app.implement("K", KImpl())
    app.create_device(
        "Siren", "siren",
        CallableDriver(actions={"sound": lambda level: None}),
    )
    return app


class TestRetryPolicy:
    def test_transient_failures_masked_by_retry(self):
        app = build()
        driver = FlakyDriver(failures=2)
        instance = app.create_device("Sensor", "s1", driver)
        app.start()
        assert instance.read("reading") == 1.5
        assert driver.attempts == 3  # 2 failures + 1 success

    def test_exhausted_retries_raise(self):
        app = build()
        driver = FlakyDriver(failures=5)
        instance = app.create_device("Sensor", "s1", driver)
        app.start()
        with pytest.raises(DeliveryError, match="glitch"):
            instance.read("reading")
        assert driver.attempts == 3  # initial + 2 retries, then give up

    def test_no_policy_means_no_retry(self):
        design = analyze("device D { source s as Float; }")
        from repro.runtime.device import DeviceInstance

        class Failing(DeviceDriver):
            def __init__(self):
                self.attempts = 0

            def read_s(self):
                self.attempts += 1
                raise DeliveryError("down")

        driver = Failing()
        instance = DeviceInstance(design.devices["D"], "d1", driver)
        with pytest.raises(DeliveryError):
            instance.read("s")
        assert driver.attempts == 1


class TestTimeoutPolicy:
    def test_slow_read_times_out(self):
        app = build()
        instance = app.create_device("Sensor", "s1", FlakyDriver(0))
        app.start()
        with pytest.raises(DeliveryError, match="timeout"):
            instance.read("slow")

    def test_fast_read_passes_timeout(self):
        app = build()
        instance = app.create_device(
            "Sensor", "s1",
            CallableDriver(sources={"reading": lambda: 0.0,
                                    "slow": lambda: 2.0}),
        )
        app.start()
        assert instance.read("slow") == 2.0


class TestDeadlineMonitoring:
    def test_fast_component_has_no_violations(self):
        app = build()
        instance = app.create_device(
            "Sensor", "s1",
            CallableDriver(sources={"reading": lambda: 1.0,
                                    "slow": lambda: 1.0}),
        )
        app.start()
        instance.publish("reading", 1.0)
        watch = app.qos.component("Watch")
        assert watch.activations == 1
        assert watch.violations == 0
        assert watch.worst_seconds < 0.02

    def test_slow_component_violates_deadline(self):
        app = build(watch=SlowWatch())
        instance = app.create_device(
            "Sensor", "s1",
            CallableDriver(sources={"reading": lambda: 1.0,
                                    "slow": lambda: 1.0}),
        )
        app.start()
        instance.publish("reading", 1.0)
        watch = app.qos.component("Watch")
        assert watch.violations == 1
        assert watch.worst_seconds > 0.02

    def test_violation_listener_fires(self):
        app = build(watch=SlowWatch())
        instance = app.create_device(
            "Sensor", "s1",
            CallableDriver(sources={"reading": lambda: 1.0,
                                    "slow": lambda: 1.0}),
        )
        violations = []
        app.qos.on_violation(lambda name, secs: violations.append(name))
        app.start()
        instance.publish("reading", 1.0)
        assert violations == ["Watch"]

    def test_stats_expose_qos(self):
        app = build()
        instance = app.create_device(
            "Sensor", "s1",
            CallableDriver(sources={"reading": lambda: 1.0,
                                    "slow": lambda: 1.0}),
        )
        app.start()
        instance.publish("reading", 1.0)
        qos = app.stats["qos"]
        assert set(qos) == {"Watch", "K"}
        assert qos["K"]["activations"] == 1

    def test_undeclared_components_not_monitored(self):
        design = analyze(
            "device D { source s as Float; }\n"
            "context C as Float { when provided s from D always publish; }"
        )
        app = Application(design)

        class C(Context):
            def on_s_from_d(self, event, discover):
                return event.value

        app.implement("C", C())
        app.start()
        assert app.stats["qos"] == {}


class TestQoSUnits:
    def test_component_qos_mean(self):
        record = ComponentQoS(deadline_seconds=1.0)
        record.record(0.2)
        record.record(0.4)
        assert record.mean_seconds == pytest.approx(0.3)

    def test_monitor_contains(self):
        monitor = QoSMonitor()
        monitor.register("X", 0.1)
        assert "X" in monitor
        assert "Y" not in monitor
