"""The synchronous pub/sub bus."""

from repro.runtime.bus import EventBus


class TestSubscribePublish:
    def test_delivery(self):
        bus = EventBus()
        got = []
        bus.subscribe("t", got.append)
        assert bus.publish("t", 42) == 1
        assert got == [42]

    def test_no_subscribers(self):
        bus = EventBus()
        assert bus.publish("t", 1) == 0

    def test_topic_isolation(self):
        bus = EventBus()
        a, b = [], []
        bus.subscribe("a", a.append)
        bus.subscribe("b", b.append)
        bus.publish("a", 1)
        assert a == [1] and b == []

    def test_tuple_topics(self):
        bus = EventBus()
        got = []
        bus.subscribe(("source", "Clock", "tickSecond"), got.append)
        bus.publish(("source", "Clock", "tickSecond"), 7)
        bus.publish(("source", "Clock", "tickMinute"), 8)
        assert got == [7]

    def test_delivery_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe("t", lambda __: order.append("first"))
        bus.subscribe("t", lambda __: order.append("second"))
        bus.publish("t", None)
        assert order == ["first", "second"]


class TestUnsubscribe:
    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        got = []
        handle = bus.subscribe("t", got.append)
        handle.unsubscribe()
        bus.publish("t", 1)
        assert got == []

    def test_subscriber_count(self):
        bus = EventBus()
        first = bus.subscribe("t", lambda __: None)
        bus.subscribe("t", lambda __: None)
        assert bus.subscriber_count("t") == 2
        first.unsubscribe()
        assert bus.subscriber_count("t") == 1

    def test_unsubscribe_during_delivery_takes_effect_next_publish(self):
        bus = EventBus()
        got = []
        handle = bus.subscribe("t", lambda v: (got.append(v),
                                               handle.unsubscribe()))
        bus.publish("t", 1)
        bus.publish("t", 2)
        assert got == [1]


class TestSnapshotSemantics:
    def test_subscriber_added_during_delivery_misses_current_event(self):
        bus = EventBus()
        late = []

        def add_late(value):
            bus.subscribe("t", late.append)

        bus.subscribe("t", add_late)
        bus.publish("t", 1)
        assert late == []
        bus.publish("t", 2)
        assert late == [2]


class TestStats:
    def test_counters(self):
        bus = EventBus()
        bus.subscribe("t", lambda __: None)
        bus.subscribe("t", lambda __: None)
        bus.publish("t", 1)
        bus.publish("u", 1)
        assert bus.stats() == {"published": 2, "delivered": 2}

    def test_reset_stats(self):
        bus = EventBus()
        bus.subscribe("t", lambda __: None)
        bus.publish("t", 1)
        bus.reset_stats()
        assert bus.stats() == {"published": 0, "delivered": 0}
        bus.publish("t", 1)
        assert bus.stats() == {"published": 1, "delivered": 1}

    def test_stats_is_a_snapshot(self):
        bus = EventBus()
        snapshot = bus.stats()
        bus.publish("t", 1)
        assert snapshot == {"published": 0, "delivered": 0}
