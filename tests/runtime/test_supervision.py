"""Component-error supervision (error_policy='isolate')."""

import pytest

from repro.runtime.app import Application
from repro.runtime.component import Context, Controller
from repro.runtime.config import RuntimeConfig
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor { source reading as Float; }
device Horn { action honk(level as Integer); }

context Healthy as Float {
    when provided reading from Sensor
    always publish;
}

context Buggy as Float {
    when provided reading from Sensor
    maybe publish;
}

context Periodic as Float {
    when periodic reading from Sensor <1 min>
    always publish;
}

controller K {
    when provided Healthy
    do honk on Horn;
}
"""


class Healthy(Context):
    def on_reading_from_sensor(self, event, discover):
        return event.value


class Buggy(Context):
    def on_reading_from_sensor(self, event, discover):
        raise RuntimeError("bug in context logic")


class BuggyPeriodic(Context):
    def on_periodic_reading(self, readings, discover):
        raise RuntimeError("bug in periodic logic")


class HealthyPeriodic(Context):
    def on_periodic_reading(self, readings, discover):
        return float(len(readings))


class BuggyController(Controller):
    def on_healthy(self, value, discover):
        raise RuntimeError("bug in controller logic")


class HonkController(Controller):
    def __init__(self):
        super().__init__()
        self.honks = 0

    def on_healthy(self, value, discover):
        self.honks += 1
        discover.devices("Horn").act("honk", level=int(value))


def build(policy, buggy_context=True, buggy_controller=False,
          buggy_periodic=False):
    app = Application(analyze(DESIGN), RuntimeConfig(error_policy=policy))
    app.implement("Healthy", Healthy())
    app.implement("Buggy", Buggy() if buggy_context else Healthy())
    app.implement(
        "Periodic", BuggyPeriodic() if buggy_periodic else HealthyPeriodic()
    )
    controller = BuggyController() if buggy_controller else HonkController()
    app.implement("K", controller)
    sensor = app.create_device(
        "Sensor", "s1", CallableDriver(sources={"reading": lambda: 1.0})
    )
    app.create_device(
        "Horn", "h1", CallableDriver(actions={"honk": lambda level: None})
    )
    app.start()
    return app, sensor, controller


class TestRaisePolicy:
    def test_default_policy_propagates(self):
        app, sensor, __ = build("raise")
        with pytest.raises(RuntimeError, match="bug in context"):
            sensor.publish("reading", 1.0)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            Application(analyze(DESIGN), RuntimeConfig(error_policy="pray"))


class TestIsolatePolicy:
    def test_failure_is_contained(self):
        app, sensor, controller = build("isolate")
        sensor.publish("reading", 2.0)
        # The buggy context failed, but the healthy chain completed.
        assert controller.honks == 1
        assert len(app.component_errors) == 1
        record = app.component_errors[0]
        assert record.component == "Buggy"
        assert isinstance(record.error, RuntimeError)
        # Pure component-logic failures carry no originating entity.
        assert record.entity_id is None

    def test_failed_component_publishes_nothing(self):
        app, sensor, __ = build("isolate")
        before = app.bus.stats()["published"]
        sensor.publish("reading", 2.0)
        # Buggy never published a ("context", "Buggy") event.
        assert app.bus.subscriber_count(("context", "Buggy")) == 0
        del before

    def test_controller_failure_contained(self):
        app, sensor, __ = build("isolate", buggy_context=False,
                                buggy_controller=True)
        sensor.publish("reading", 2.0)
        assert [r.component for r in app.component_errors] == ["K"]

    def test_periodic_failure_does_not_kill_schedule(self):
        app, __, __ = build("isolate", buggy_periodic=True)
        app.advance(180)
        names = [r.component for r in app.component_errors]
        assert names == ["Periodic", "Periodic", "Periodic"]

    def test_error_listener_notified(self):
        app, sensor, __ = build("isolate")
        seen = []
        app.on_component_error(lambda name, exc: seen.append(name))
        sensor.publish("reading", 1.0)
        assert seen == ["Buggy"]

    def test_stats_expose_errors(self):
        app, sensor, __ = build("isolate")
        sensor.publish("reading", 1.0)
        assert app.stats["component_errors"] == [("Buggy", "RuntimeError")]

    def test_healthy_app_records_nothing(self):
        app, sensor, __ = build("isolate", buggy_context=False)
        sensor.publish("reading", 1.0)
        app.advance(60)
        assert app.component_errors == []
