"""Tuning-off byte-identity: a disabled controller can never perturb a run.

The contract backing ``TuningConfig(enabled=False)`` (the default) is
stronger than "no adjustments": the *presence and parameters* of a
disabled tuning section must be observationally invisible.  The
hypothesis property drives the grouped + windowed gather pipeline across
sweep modes x cache x batch and compares payloads, window folds and the
full metrics snapshot (wall-time histograms excluded) between a default
config and one whose tuning section carries aggressively different — but
disabled — parameters.  A companion test holds the process-sharded
runtime to the same identity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Application,
    BatchConfig,
    CacheConfig,
    Context,
    RuntimeConfig,
    ShardBootstrap,
    ShardConfig,
    ShardedRuntime,
    SweepConfig,
    TuningConfig,
    analyze,
)
from repro.simulation.sensors import FleetSubstrate

DESIGN = """\
device PresenceSensor {
    attribute parkingLot as LotEnum;
    source presence as Boolean;
}
enumeration LotEnum { A22, B16, D6 }

context FreeCount as Integer {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot
    with map as Boolean reduce as Integer
    always publish;
}

context Windowed as Integer {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot every <30 min>
    always publish;
}
"""

LOTS = ("A22", "B16", "D6")
PERIOD = 600.0

# Deliberately un-default disabled sections: everything but ``enabled``
# differs from TuningConfig(), so any leak of these parameters into the
# run shows up as an identity break.
VARIED_DISABLED = TuningConfig(
    enabled=False,
    interval_seconds=7.0,
    knobs=("sweep.workers",),
    objective="gather_errors",
    epsilon=0.9,
    warmup_intervals=0,
    cooldown_intervals=0,
    rollback_tolerance=0.5,
    drift_tolerance=0.01,
    seed=99,
)


class FreeCountImpl(Context):
    def __init__(self):
        super().__init__()
        self.deliveries = []

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, True)

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, len(values))

    def on_periodic_presence(self, by_lot, discover):
        self.deliveries.append(dict(by_lot))
        return sum(by_lot.values())


class WindowedImpl(Context):
    def __init__(self):
        super().__init__()
        self.windows = []

    def on_periodic_presence(self, window_by_lot, discover):
        self.windows.append(
            {lot: list(values) for lot, values in window_by_lot.items()}
        )
        return sum(len(v) for v in window_by_lot.values())


def run_once(tuning, mode, cache_on, batch_on, sensors, periods):
    config = RuntimeConfig(
        sweep=SweepConfig(mode=mode, workers=3),
        cache=CacheConfig(enabled=cache_on),
        batch=BatchConfig(enabled=batch_on),
        tuning=tuning,
    )
    app = Application(analyze(DESIGN), config)
    free = app.implement("FreeCount", FreeCountImpl())
    windowed = app.implement("Windowed", WindowedImpl())
    substrate = FleetSubstrate(
        app.clock, seed=7, models={"presence": lambda draw: draw < 0.5}
    )
    for index in range(sensors):
        app.create_device(
            "PresenceSensor",
            f"s-{index}",
            substrate.driver("presence"),
            parkingLot=LOTS[index % len(LOTS)],
        )
    app.start()
    app.advance(periods * PERIOD)
    counters = {
        name: dict(samples)
        for name, samples in app.metrics.snapshot().items()
        if "seconds" not in name  # wall-time histograms may differ
    }
    app.stop()
    return free.deliveries, windowed.windows, counters


class TestDisabledTuningIsInvisible:
    @settings(max_examples=15, deadline=None)
    @given(
        mode=st.sampled_from(["serial", "threaded"]),
        cache_on=st.booleans(),
        batch_on=st.booleans(),
        sensors=st.integers(min_value=1, max_value=9),
        periods=st.integers(min_value=1, max_value=4),
    )
    def test_payloads_windows_and_counters_identical(
        self, mode, cache_on, batch_on, sensors, periods
    ):
        baseline = run_once(
            TuningConfig(), mode, cache_on, batch_on, sensors, periods
        )
        varied = run_once(
            VARIED_DISABLED, mode, cache_on, batch_on, sensors, periods
        )
        assert varied == baseline

    def test_disabled_tuning_registers_no_metrics(self):
        __, __, counters = run_once(
            VARIED_DISABLED, "serial", False, False, 3, 1
        )
        assert not [name for name in counters if name.startswith("tuning_")]


class IdentityBootstrap(ShardBootstrap):
    """Sharded presence fleet parameterized on the tuning section."""

    def __init__(self, tuning, sensors=6):
        self.tuning = tuning
        self.sensors = sensors

    def fleet(self):
        return [f"s-{index:03d}" for index in range(self.sensors)]

    def build(self, ctx):
        config = RuntimeConfig(
            shard=ShardConfig(enabled=True, workers=2),
            tuning=self.tuning,
        )
        app = Application(analyze(DESIGN), config)
        app.implement("FreeCount", FreeCountImpl())
        app.implement("Windowed", WindowedImpl())
        substrate = FleetSubstrate(
            app.clock, seed=7, models={"presence": lambda draw: draw < 0.5}
        )
        for position, entity_id in enumerate(self.fleet()):
            if ctx.owns(entity_id):
                app.create_device(
                    "PresenceSensor",
                    entity_id,
                    substrate.driver("presence"),
                    parkingLot=LOTS[position % len(LOTS)],
                )
        return app


class TestShardedIdentity:
    def test_sharded_runs_are_identical_with_disabled_tuning(self):
        def run_sharded(tuning):
            runtime = ShardedRuntime(IdentityBootstrap(tuning))
            published = []
            for name in ("FreeCount", "Windowed"):
                runtime.app.bus.subscribe(
                    ("context", name),
                    lambda event, name=name: published.append(
                        (name, event.value, event.timestamp)
                    ),
                )
            runtime.start()
            try:
                runtime.advance(2 * PERIOD)
            finally:
                runtime.stop()
            return published

        assert run_sharded(TuningConfig()) == run_sharded(VARIED_DISABLED)
