"""Edge/cloud placement tier: configs, node assignment, the edge split.

The load-bearing invariant mirrors the sweep/batch/cache/shard suites:
``PlacementConfig(enabled=True)`` changes *where* a grouped MapReduce
gather runs (map + map-side combine at the edge nodes) and *what
crosses the WAN* (per-group partials instead of raw readings), never
what the context receives — at zero loss the deliveries are
byte-identical to the cloud-only path for any fleet size, edge-node
count, sweep mode and shard setting.
"""

import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Application,
    CallableDriver,
    Context,
    EdgeNode,
    HopProfile,
    NetworkConfig,
    PlacementConfig,
    PlacementError,
    RuntimeConfig,
    ShardBootstrap,
    ShardConfig,
    ShardedRuntime,
    SweepConfig,
    Tier,
    analyze,
)
from repro.runtime.placement import PlacementExecutor, payload_nbytes
from repro.simulation.sensors import FleetSubstrate, SubstrateDriver

DESIGN = """\
device EdgePresence {
    attribute parkingLot as LotEnum;
    source presence as Boolean;
}
enumeration LotEnum { A22, B16, D6, E9 }

context FreeCount as Integer at edge {
    when periodic presence from EdgePresence <10 min>
    grouped by parkingLot
    with map as Boolean reduce as Integer
    always publish;
}
"""

LOTS = ("A22", "B16", "D6", "E9")
PERIOD = 600.0


class FreeCountImpl(Context):
    """Non-associative reduce (``len``) — exact only if the edge split
    re-sequences partials into the single-process emission order."""

    def __init__(self):
        super().__init__()
        self.deliveries = []

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, True)

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, len(values))

    def on_periodic_presence(self, by_lot, discover):
        self.deliveries.append(dict(by_lot))
        return sum(by_lot.values())


class CombiningFreeCountImpl(FreeCountImpl):
    """Associative variant with a map-side combiner: partial counts
    merge by addition, so edge combining shrinks the WAN payload."""

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, 1)

    def combine(self, lot, values, collector):
        collector.emit_combine(lot, sum(values))

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, sum(values))


TOPOLOGY = NetworkConfig(
    hops={
        "access": HopProfile(latency=0.0),
        "wan": HopProfile(latency=0.0),
    }
)


def build_app(
    placement=None,
    network=None,
    sensors=8,
    seed=11,
    sweep=None,
    implementation=FreeCountImpl,
):
    config = RuntimeConfig(
        sweep=sweep if sweep is not None else SweepConfig(),
        network=network if network is not None else NetworkConfig(),
        placement=placement if placement is not None else PlacementConfig(),
    )
    app = Application(analyze(DESIGN), config)
    free = app.implement("FreeCount", implementation())
    substrate = FleetSubstrate(
        app.clock,
        seed=seed,
        models={"presence": lambda draw: draw < 0.5},
    )
    for index in range(sensors):
        app.create_device(
            "EdgePresence",
            f"s-{index:03d}",
            SubstrateDriver(substrate, sources=("presence",)),
            parkingLot=LOTS[index % len(LOTS)],
        )
    app.start()
    return app, free


class TestTier:
    def test_parse_names_and_instances(self):
        assert Tier.parse("edge") is Tier.EDGE
        assert Tier.parse(Tier.CLOUD) is Tier.CLOUD

    def test_parse_rejects_unknown(self):
        with pytest.raises(PlacementError, match="orbit"):
            Tier.parse("orbit")


class TestEdgeNode:
    def test_requires_node_id(self):
        with pytest.raises(PlacementError):
            EdgeNode("")

    def test_values_normalize_to_tuple(self):
        assert EdgeNode("n1", ["A22", "B16"]).values == ("A22", "B16")


class TestPlacementConfig:
    def test_defaults_are_off(self):
        config = PlacementConfig()
        assert config.enabled is False
        assert config.default_tier is Tier.CLOUD
        assert config.access_hop == "access"
        assert config.wan_hop == "wan"

    def test_default_tier_coerces_names(self):
        assert PlacementConfig(default_tier="edge").default_tier is Tier.EDGE

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(PlacementError, match="duplicate"):
            PlacementConfig(edge_nodes=(EdgeNode("n1"), EdgeNode("n1")))

    def test_value_owned_by_two_nodes_rejected(self):
        with pytest.raises(PlacementError, match="more than one"):
            PlacementConfig(
                edge_nodes=(EdgeNode("n1", ("A22",)), EdgeNode("n2", ("A22",)))
            )

    def test_runtime_config_field(self):
        config = RuntimeConfig(placement=PlacementConfig(enabled=True))
        assert config.placement.enabled
        with pytest.raises(TypeError):
            RuntimeConfig(placement="edge")
        assert "PlacementConfig" in RuntimeConfig().describe()["placement"]


def entity(entity_id, **attributes):
    return types.SimpleNamespace(entity_id=entity_id, attributes=attributes)


class TestNodeResolution:
    def test_implicit_node_per_attribute_value(self):
        executor = PlacementExecutor(PlacementConfig(enabled=True))
        assert executor.node_for(entity("s1", parkingLot="A22"), "parkingLot")
        assert (
            executor.node_for(entity("s1", parkingLot="A22"), "parkingLot")
            == "A22"
        )

    def test_declared_node_owns_values(self):
        executor = PlacementExecutor(
            PlacementConfig(
                enabled=True, edge_nodes=(EdgeNode("cab-1", ("A22", "B16")),)
            )
        )
        assert (
            executor.node_for(entity("s1", parkingLot="B16"), "parkingLot")
            == "cab-1"
        )

    def test_explicit_assignment_wins(self):
        executor = PlacementExecutor(
            PlacementConfig(
                enabled=True,
                edge_nodes=(EdgeNode("cab-1", ("A22",)), EdgeNode("cab-2")),
            )
        )
        executor.assign("s1", "cab-2")
        assert (
            executor.node_for(entity("s1", parkingLot="A22"), "parkingLot")
            == "cab-2"
        )

    def test_missing_attribute_raises(self):
        executor = PlacementExecutor(PlacementConfig(enabled=True))
        with pytest.raises(PlacementError, match="no attribute"):
            executor.node_for(entity("s1"), "parkingLot")

    def test_unowned_value_raises_when_nodes_declared(self):
        executor = PlacementExecutor(
            PlacementConfig(enabled=True, edge_nodes=(EdgeNode("n", ("A",)),))
        )
        with pytest.raises(PlacementError, match="no declared edge node"):
            executor.node_for(entity("s1", parkingLot="Z"), "parkingLot")

    def test_assign_unknown_node_raises(self):
        executor = PlacementExecutor(
            PlacementConfig(enabled=True, edge_nodes=(EdgeNode("n1"),))
        )
        with pytest.raises(PlacementError, match="unknown edge node"):
            executor.assign("s1", "ghost")

    def test_custom_edge_attribute_overrides_grouping(self):
        executor = PlacementExecutor(
            PlacementConfig(enabled=True, edge_attribute="cell")
        )
        probe = entity("s1", parkingLot="A22", cell="north")
        assert executor.node_for(probe, "parkingLot") == "north"

    def test_app_assign_requires_enabled_placement(self):
        app, __ = build_app()
        with pytest.raises(PlacementError, match="disabled"):
            app.assign_edge_node("s-000", "n1")


class TestEdgeSplit:
    def test_edge_deliveries_match_cloud_only(self):
        cloud_app, cloud = build_app()
        edge_app, edge = build_app(
            placement=PlacementConfig(enabled=True), network=TOPOLOGY
        )
        cloud_app.advance(4 * PERIOD)
        edge_app.advance(4 * PERIOD)
        assert edge.deliveries == cloud.deliveries
        stats = edge_app.stats["placement"]
        assert stats["edge_sweeps"] == 4
        assert stats["partials_sent"] > 0
        assert stats["raw_readings"] == 0
        assert stats["edge_nodes"] == len(LOTS)

    def test_unannotated_context_defaults_to_cloud(self):
        plain = DESIGN.replace(" at edge", "")
        config = RuntimeConfig(
            network=TOPOLOGY,
            placement=PlacementConfig(enabled=True),
        )
        app = Application(analyze(plain), config)
        free = app.implement("FreeCount", FreeCountImpl())
        app.create_device(
            "EdgePresence",
            "s-000",
            CallableDriver(sources={"presence": lambda: False}),
            parkingLot="A22",
        )
        app.start()
        app.advance(PERIOD)
        stats = app.stats["placement"]
        assert stats["edge_sweeps"] == 0
        assert stats["raw_readings"] == 1
        assert stats["wan_bytes"] == payload_nbytes(False)
        assert free.deliveries == [{"A22": 1}]

    def test_partials_cut_wan_bytes_with_combiner(self):
        sensors = 64
        app, free = build_app(
            placement=PlacementConfig(enabled=True),
            network=TOPOLOGY,
            sensors=sensors,
            implementation=CombiningFreeCountImpl,
        )
        app.advance(2 * PERIOD)
        stats = app.stats["placement"]
        # The cloud-only shape would ship every raw boolean over the
        # WAN; the edge split ships at most one combined partial per
        # node per sweep.
        raw_bytes = sensors * 2 * payload_nbytes(True)
        assert stats["wan_bytes"] < raw_bytes
        assert 0 < stats["partials_sent"] <= 2 * len(LOTS)
        assert free.deliveries  # still delivered

    def test_flat_network_still_accounts_bytes(self):
        app, free = build_app(
            placement=PlacementConfig(enabled=True),
            network=NetworkConfig(latency=0.0),
        )
        app.advance(PERIOD)
        assert free.deliveries
        assert app.stats["placement"]["wan_bytes"] > 0

    def test_placement_metrics_registered(self):
        app, __ = build_app(
            placement=PlacementConfig(enabled=True), network=TOPOLOGY
        )
        app.advance(PERIOD)
        assert app.metrics.value("placement_edge_sweeps_total") == 1
        assert app.metrics.value("placement_bytes_wan_total") > 0
        assert (
            app.metrics.value(
                "network_hop_bytes_total", hop="wan"
            )
            == app.stats["placement"]["wan_bytes"]
        )

    def test_explicit_nodes_group_lots(self):
        app, free = build_app(
            placement=PlacementConfig(
                enabled=True,
                edge_nodes=(
                    EdgeNode("north", ("A22", "B16")),
                    EdgeNode("south", ("D6", "E9")),
                ),
            ),
            network=TOPOLOGY,
        )
        app.advance(PERIOD)
        assert app.stats["placement"]["edge_nodes"] == 2
        (delivery,) = free.deliveries
        assert set(delivery) <= set(LOTS)


class TestWanLoss:
    def test_wan_loss_drops_partials_not_readings(self):
        lossy = NetworkConfig(
            hops={
                "access": HopProfile(),
                "wan": HopProfile(loss=0.8),
            },
            seed=5,
        )
        app, free = build_app(
            placement=PlacementConfig(enabled=True),
            network=lossy,
            sensors=16,
        )
        app.advance(10 * PERIOD)
        stats = app.stats["placement"]
        assert stats["partials_dropped"] > 0
        assert stats["partials_sent"] > stats["partials_dropped"]
        # Reads never touched the WAN: no gather errors, every sweep
        # still delivered (possibly with fewer groups).
        assert app.stats["gather_errors"] == 0
        assert len(free.deliveries) == 10

    def test_zero_loss_wan_drops_nothing(self):
        app, __ = build_app(
            placement=PlacementConfig(enabled=True), network=TOPOLOGY
        )
        app.advance(4 * PERIOD)
        assert app.stats["placement"]["partials_dropped"] == 0


# ---------------------------------------------------------------------------
# Property: placement-on == placement-off, byte for byte
# ---------------------------------------------------------------------------


class PlacementBootstrap(ShardBootstrap):
    def __init__(self, sensors, seed, shard=None, placement=None):
        self.sensors = sensors
        self.seed = seed
        self.shard = shard
        self.placement = placement

    def fleet(self):
        return [f"s-{index:03d}" for index in range(self.sensors)]

    def build(self, ctx):
        config = RuntimeConfig(
            shard=self.shard if self.shard is not None else ShardConfig(),
            network=TOPOLOGY,
            placement=(
                self.placement
                if self.placement is not None
                else PlacementConfig()
            ),
        )
        app = Application(analyze(DESIGN), config)
        app.implement("FreeCount", FreeCountImpl())
        substrate = FleetSubstrate(
            app.clock,
            seed=self.seed,
            models={"presence": lambda draw: draw < 0.5},
        )
        for position, entity_id in enumerate(self.fleet()):
            if ctx.owns(entity_id):
                app.create_device(
                    "EdgePresence",
                    entity_id,
                    SubstrateDriver(substrate, sources=("presence",)),
                    parkingLot=LOTS[position % len(LOTS)],
                )
        return app


def run_sharded(sensors, seed, placement, periods=3):
    bootstrap = PlacementBootstrap(
        sensors,
        seed,
        shard=ShardConfig(enabled=True, workers=2),
        placement=placement,
    )
    runtime = ShardedRuntime(bootstrap)
    runtime.start()
    try:
        runtime.advance(periods * PERIOD)
        return list(runtime.app.implementation("FreeCount").deliveries)
    finally:
        runtime.stop()


def edge_nodes_for(count):
    if count == 0:
        return ()
    return tuple(
        EdgeNode(
            f"node-{index}",
            tuple(LOTS[position]
                  for position in range(len(LOTS))
                  if position % count == index),
        )
        for index in range(count)
    )


class TestByteIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        sensors=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**16),
        nodes=st.integers(min_value=0, max_value=3),
        threaded=st.booleans(),
    )
    def test_edge_split_matches_cloud_only(
        self, sensors, seed, nodes, threaded
    ):
        sweep = SweepConfig(mode="threaded" if threaded else "serial")
        baseline_app, baseline = build_app(
            sensors=sensors, seed=seed, sweep=sweep
        )
        edge_app, edge = build_app(
            placement=PlacementConfig(
                enabled=True, edge_nodes=edge_nodes_for(nodes)
            ),
            network=TOPOLOGY,
            sensors=sensors,
            seed=seed,
            sweep=sweep,
        )
        periods = 3
        baseline_app.advance(periods * PERIOD)
        edge_app.advance(periods * PERIOD)
        baseline_app.stop()
        edge_app.stop()
        assert edge.deliveries == baseline.deliveries
        assert edge_app.stats["placement"]["raw_readings"] == 0

    @settings(max_examples=4, deadline=None)
    @given(
        sensors=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_sharded_edge_split_matches_local(self, sensors, seed):
        local_app, local = build_app(
            placement=PlacementConfig(enabled=True),
            network=TOPOLOGY,
            sensors=sensors,
            seed=seed,
        )
        local_app.advance(3 * PERIOD)
        sharded = run_sharded(
            sensors, seed, PlacementConfig(enabled=True)
        )
        assert sharded == local.deliveries
