"""Contexts with several interaction contracts at once."""

import pytest

from repro.runtime.app import Application
from repro.runtime.component import Context
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

DESIGN = """\
device Button { source pressed as Boolean; }
device Meter { source level as Float; }
device OtherMeter { source level as Float; }

context Mixed as Float {
    when provided pressed from Button
    maybe publish;

    when periodic level from Meter <1 min>
    always publish;

    when required;
}

context TwoDevices as Float {
    when provided level from Meter
    maybe publish;

    when provided level from OtherMeter
    maybe publish;
}
"""


class MixedImpl(Context):
    """Event-driven, periodic, and query-served in one component."""

    def __init__(self):
        super().__init__()
        self.presses = 0
        self.last_sweep = 0.0

    def on_pressed_from_button(self, event, discover):
        self.presses += 1
        return None

    def on_periodic_level(self, readings, discover):
        self.last_sweep = sum(r.value for r in readings)
        return self.last_sweep

    def when_required(self, discover):
        return self.last_sweep


class TwoDevicesImpl(Context):
    """The same source name on two devices: long handler names
    disambiguate."""

    def __init__(self):
        super().__init__()
        self.from_meter = []
        self.from_other = []

    def on_level_from_meter(self, event, discover):
        self.from_meter.append(event.value)
        return None

    def on_level_from_other_meter(self, event, discover):
        self.from_other.append(event.value)
        return None


@pytest.fixture
def app():
    application = Application(analyze(DESIGN))
    application.implement("Mixed", MixedImpl())
    application.implement("TwoDevices", TwoDevicesImpl())
    return application


def bind_all(app):
    button = app.create_device(
        "Button", "b1", CallableDriver(sources={"pressed": lambda: False})
    )
    meter = app.create_device(
        "Meter", "m1", CallableDriver(sources={"level": lambda: 2.0})
    )
    other = app.create_device(
        "OtherMeter", "o1", CallableDriver(sources={"level": lambda: 9.0})
    )
    return button, meter, other


class TestMixedContext:
    def test_all_three_delivery_paths_coexist(self, app):
        button, __, __ = bind_all(app)
        app.start()
        button.publish("pressed", True)
        app.advance(60)
        mixed = app.implementation("Mixed")
        assert mixed.presses == 1
        assert mixed.last_sweep == 2.0
        assert app.query_context("Mixed") == 2.0

    def test_activation_count_spans_interactions(self, app):
        button, __, __ = bind_all(app)
        app.start()
        button.publish("pressed", True)
        button.publish("pressed", True)
        app.advance(120)
        assert app.stats["context_activations"]["Mixed"] == 4  # 2 + 2


class TestSameSourceTwoDevices:
    def test_events_route_to_the_right_handler(self, app):
        __, meter, other = bind_all(app)
        app.start()
        meter.publish("level", 1.0)
        other.publish("level", 2.0)
        meter.publish("level", 3.0)
        two = app.implementation("TwoDevices")
        assert two.from_meter == [1.0, 3.0]
        assert two.from_other == [2.0]

    def test_validation_requires_both_handlers(self):
        class OnlyOne(Context):
            def on_level_from_meter(self, event, discover):
                return None

        application = Application(analyze(DESIGN))
        application.implement("Mixed", MixedImpl())
        application.implement("TwoDevices", OnlyOne())
        with pytest.raises(Exception, match="on_level_from_other_meter"):
            application.start()

    def test_short_handler_name_would_be_ambiguous_but_works_alone(self):
        """A single short-named handler serves both subscriptions — the
        documented fallback when the developer wants unified handling."""

        class Unified(Context):
            def __init__(self):
                super().__init__()
                self.seen = []

            def on_level(self, event, discover):
                self.seen.append(event.device.entity_id)
                return None

        application = Application(analyze(DESIGN))
        application.implement("Mixed", MixedImpl())
        unified = Unified()
        application.implement("TwoDevices", unified)
        __, meter, other = bind_all(application)
        application.start()
        meter.publish("level", 1.0)
        other.publish("level", 1.0)
        assert unified.seen == ["m1", "o1"]
