"""End-to-end dataflow through the Application runtime (SCC, Figure 2)."""

import pytest

from repro.errors import RuntimeOrchestrationError, ValueConformanceError
from repro.runtime.app import Application
from repro.runtime.component import Context, Controller, Publishable
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor {
    attribute zone as ZoneEnum;
    source reading as Float;
}
device Button { source pressed as Boolean; }
device Siren { action sound(level as Integer); }
enumeration ZoneEnum { NORTH, SOUTH }

context Spike as Float {
    when provided reading from Sensor
    maybe publish;
}

context Severity as Integer {
    when provided Spike
    always publish;
}

controller SirenController {
    when provided Severity
    do sound on Siren;
}
"""


class SpikeImpl(Context):
    def __init__(self, threshold=10.0):
        super().__init__()
        self.threshold = threshold
        self.seen = []

    def on_reading_from_sensor(self, event, discover):
        self.seen.append((event.device.entity_id, event.value))
        if event.value > self.threshold:
            return event.value
        return None


class SeverityImpl(Context):
    def on_spike(self, value, discover):
        return Publishable(int(value // 10))


class SirenImpl(Controller):
    def on_severity(self, level, discover):
        discover.devices("Siren").act("sound", level=level)


@pytest.fixture
def app():
    application = Application(analyze(DESIGN))
    application.implement("Spike", SpikeImpl())
    application.implement("Severity", SeverityImpl())
    application.implement("SirenController", SirenImpl())
    return application


def add_sensor(app, entity_id, zone="NORTH"):
    return app.create_device(
        "Sensor",
        entity_id,
        CallableDriver(sources={"reading": lambda: 0.0}),
        zone=zone,
    )


def add_siren(app, log):
    return app.create_device(
        "Siren",
        "siren",
        CallableDriver(actions={"sound": lambda level: log.append(level)}),
    )


class TestEventDrivenChain:
    def test_source_to_action_flow(self, app):
        log = []
        sensor = add_sensor(app, "s1")
        add_siren(app, log)
        app.start()
        sensor.publish("reading", 42.0)
        assert log == [4]

    def test_maybe_publish_blocks_chain(self, app):
        log = []
        sensor = add_sensor(app, "s1")
        add_siren(app, log)
        app.start()
        sensor.publish("reading", 5.0)
        assert log == []
        assert app.implementation("Spike").seen == [("s1", 5.0)]

    def test_event_carries_device_proxy_and_timestamp(self, app):
        add_siren(app, [])
        sensor = add_sensor(app, "s1", zone="SOUTH")
        app.start()
        app.clock.advance(7.0)
        sensor.publish("reading", 1.0)
        spike = app.implementation("Spike")
        assert spike.seen == [("s1", 1.0)]

    def test_publishable_wrapper_unwrapped(self, app):
        log = []
        sensor = add_sensor(app, "s1")
        add_siren(app, log)
        app.start()
        sensor.publish("reading", 99.0)
        assert log == [9]

    def test_multiple_sensors_share_subscription(self, app):
        log = []
        first = add_sensor(app, "s1")
        second = add_sensor(app, "s2")
        add_siren(app, log)
        app.start()
        first.publish("reading", 20.0)
        second.publish("reading", 30.0)
        assert log == [2, 3]

    def test_stats_track_activations(self, app):
        log = []
        sensor = add_sensor(app, "s1")
        add_siren(app, log)
        app.start()
        sensor.publish("reading", 20.0)
        stats = app.stats
        assert stats["context_activations"]["Spike"] == 1
        assert stats["context_activations"]["Severity"] == 1
        assert stats["controller_activations"]["SirenController"] == 1


class TestPublishDisciplineEnforcement:
    def test_always_publish_with_none_raises(self, app):
        class BadSeverity(Context):
            def on_spike(self, value, discover):
                return None

        application = Application(analyze(DESIGN))
        application.implement("Spike", SpikeImpl())
        application.implement("Severity", BadSeverity())
        application.implement("SirenController", SirenImpl())
        sensor = application.create_device(
            "Sensor", "s1",
            CallableDriver(sources={"reading": lambda: 0.0}), zone="NORTH",
        )
        application.start()
        with pytest.raises(RuntimeOrchestrationError, match="always publish"):
            sensor.publish("reading", 50.0)

    def test_published_value_type_checked(self, app):
        class WrongType(Context):
            def on_spike(self, value, discover):
                return "severe"

        application = Application(analyze(DESIGN))
        application.implement("Spike", SpikeImpl())
        application.implement("Severity", WrongType())
        application.implement("SirenController", SirenImpl())
        sensor = application.create_device(
            "Sensor", "s1",
            CallableDriver(sources={"reading": lambda: 0.0}), zone="NORTH",
        )
        application.start()
        with pytest.raises(ValueConformanceError):
            sensor.publish("reading", 50.0)


class TestLifecycle:
    def test_start_twice_rejected(self, app):
        add_siren(app, [])
        app.start()
        with pytest.raises(RuntimeOrchestrationError):
            app.start()

    def test_stop_silences_dispatch(self, app):
        log = []
        sensor = add_sensor(app, "s1")
        add_siren(app, log)
        app.start()
        app.stop()
        sensor.publish("reading", 42.0)
        assert log == []

    def test_stop_without_start_is_noop(self, app):
        app.stop()

    def test_on_start_and_on_stop_hooks(self):
        events = []

        class Hooked(Context):
            def on_reading_from_sensor(self, event, discover):
                return None

            def on_start(self):
                events.append("start")

            def on_stop(self):
                events.append("stop")

        design = analyze(
            "device Sensor { source reading as Float; }\n"
            "context Spike as Float { when provided reading from Sensor "
            "maybe publish; }"
        )
        application = Application(design)
        application.implement("Spike", Hooked())
        application.start()
        application.stop()
        assert events == ["start", "stop"]

    def test_components_bound_with_name_discover_clock(self, app):
        add_siren(app, [])
        app.start()
        spike = app.implementation("Spike")
        assert spike.name == "Spike"
        assert spike.discover is app.discover
        assert spike.now() == app.clock.now()
