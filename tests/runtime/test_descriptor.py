"""Deployment descriptors: declarative entity binding."""

import json

import pytest

from repro.errors import BindingError
from repro.runtime.app import Application
from repro.runtime.binding import BindingTime
from repro.runtime.component import Context
from repro.runtime.descriptor import (
    DriverCatalog,
    apply_descriptor,
    load_descriptor,
)
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor {
    attribute zone as ZoneEnum;
    source reading as Float;
}
enumeration ZoneEnum { NORTH, SOUTH }
context Sweep as Integer {
    when periodic reading from Sensor <1 min>
    always publish;
}
"""

DESCRIPTOR = {
    "name": "pilot",
    "entities": [
        {"type": "Sensor", "id": "s1",
         "attributes": {"zone": "NORTH"},
         "driver": "constant", "config": {"value": 1.0}},
        {"type": "Sensor", "id": "s2",
         "attributes": {"zone": "SOUTH"},
         "driver": "constant", "config": {"value": 2.0},
         "binding": "runtime"},
    ],
}


class SweepImpl(Context):
    def on_periodic_reading(self, readings, discover):
        return len(readings)


@pytest.fixture
def catalog():
    catalog = DriverCatalog()
    catalog.register(
        "constant",
        lambda value: CallableDriver(sources={"reading": lambda: value}),
    )
    return catalog


@pytest.fixture
def app():
    application = Application(analyze(DESIGN))
    application.implement("Sweep", SweepImpl())
    return application


class TestLoadDescriptor:
    def test_from_dict(self):
        descriptor = load_descriptor(DESCRIPTOR)
        assert descriptor.name == "pilot"
        assert descriptor.entity_count == 2

    def test_from_json_text(self):
        descriptor = load_descriptor(json.dumps(DESCRIPTOR))
        assert descriptor.entities[0].entity_id == "s1"

    def test_binding_times_parsed(self):
        descriptor = load_descriptor(DESCRIPTOR)
        assert descriptor.entities[0].binding is BindingTime.DEPLOYMENT
        assert descriptor.entities[1].binding is BindingTime.RUNTIME
        assert len(descriptor.by_binding(BindingTime.RUNTIME)) == 1

    def test_invalid_json(self):
        with pytest.raises(BindingError, match="JSON"):
            load_descriptor("{not json")

    def test_missing_entities(self):
        with pytest.raises(BindingError, match="entities"):
            load_descriptor({"name": "x"})

    def test_missing_required_field(self):
        with pytest.raises(BindingError, match="missing 'driver'"):
            load_descriptor({"entities": [{"type": "Sensor", "id": "x"}]})

    def test_duplicate_ids(self):
        with pytest.raises(BindingError, match="duplicate"):
            load_descriptor({
                "entities": [
                    {"type": "Sensor", "id": "x", "driver": "d"},
                    {"type": "Sensor", "id": "x", "driver": "d"},
                ]
            })

    def test_unknown_binding_time(self):
        with pytest.raises(BindingError, match="binding time"):
            load_descriptor({
                "entities": [
                    {"type": "Sensor", "id": "x", "driver": "d",
                     "binding": "someday"},
                ]
            })


class TestDriverCatalog:
    def test_register_and_create(self, catalog):
        driver = catalog.create("constant", value=5.0)
        assert driver.read("reading") == 5.0

    def test_duplicate_registration(self, catalog):
        with pytest.raises(BindingError):
            catalog.register("constant", lambda: None)

    def test_unknown_driver(self, catalog):
        with pytest.raises(BindingError, match="catalog"):
            catalog.create("ghost")

    def test_names(self, catalog):
        assert catalog.names() == ["constant"]
        assert "constant" in catalog


class TestApplyDescriptor:
    def test_staged_then_bound(self, app, catalog):
        deployment = apply_descriptor(
            app, load_descriptor(DESCRIPTOR), catalog
        )
        deployment.deploy()
        deployment.launch()
        assert app.registry.entity_ids() == ["s1"]
        deployment.bind_runtime()
        assert app.registry.entity_ids() == ["s1", "s2"]

    def test_bound_entities_serve_readings(self, app, catalog):
        deployment = apply_descriptor(
            app, load_descriptor(DESCRIPTOR), catalog
        )
        deployment.deploy()
        deployment.launch()
        deployment.bind_runtime()
        assert app.registry.get("s2").read("reading") == 2.0

    def test_unknown_device_type_fails_atomically(self, app, catalog):
        bad = {
            "entities": [
                {"type": "Toaster", "id": "t1", "driver": "constant"},
            ]
        }
        with pytest.raises(BindingError, match="Toaster"):
            apply_descriptor(app, load_descriptor(bad), catalog)
        assert len(app.registry) == 0

    def test_unknown_driver_fails_atomically(self, app, catalog):
        bad = {
            "entities": [
                {"type": "Sensor", "id": "s9",
                 "attributes": {"zone": "NORTH"}, "driver": "ghost"},
            ]
        }
        with pytest.raises(BindingError, match="ghost"):
            apply_descriptor(app, load_descriptor(bad), catalog)

    def test_attribute_validation_applies(self, app, catalog):
        bad = {
            "entities": [
                {"type": "Sensor", "id": "s9",
                 "attributes": {"zone": "WEST"},
                 "driver": "constant", "config": {"value": 0.0}},
            ]
        }
        with pytest.raises(Exception, match="ZoneEnum|WEST"):
            apply_descriptor(app, load_descriptor(bad), catalog)


TOPOLOGY_DESCRIPTOR = {
    "name": "fog-pilot",
    "topology": {
        "seed": 7,
        "edge_attribute": "zone",
        "hops": {
            "access": {"latency": 0.002},
            "wan": {"latency": 0.08, "bandwidth": 1000000.0},
        },
        "edge_nodes": [
            {"id": "cab-north", "values": ["NORTH"]},
            {"id": "cab-south", "values": ["SOUTH"]},
        ],
    },
    "entities": [
        {"type": "Sensor", "id": "s1",
         "attributes": {"zone": "NORTH"},
         "driver": "constant", "config": {"value": 1.0},
         "placement": {"tier": "edge", "node": "cab-north"}},
        {"type": "Sensor", "id": "s2",
         "attributes": {"zone": "SOUTH"},
         "driver": "constant", "config": {"value": 2.0}},
    ],
}


class TestTopologySection:
    def test_topology_parses(self):
        descriptor = load_descriptor(TOPOLOGY_DESCRIPTOR)
        topology = descriptor.topology
        assert [name for name, __ in topology.hops] == ["access", "wan"]
        assert topology.hops[1][1].bandwidth == 1000000.0
        assert [n.node_id for n in topology.edge_nodes] == [
            "cab-north", "cab-south",
        ]
        assert topology.seed == 7

    def test_round_trips_through_json(self):
        once = load_descriptor(TOPOLOGY_DESCRIPTOR)
        again = load_descriptor(json.dumps(TOPOLOGY_DESCRIPTOR))
        assert again == once

    def test_builds_runtime_configs(self):
        descriptor = load_descriptor(TOPOLOGY_DESCRIPTOR)
        network = descriptor.network_config()
        assert network.seed == 7
        assert network.hop_names() == ("access", "wan")
        placement = descriptor.placement_config()
        assert placement.enabled
        assert placement.edge_attribute == "zone"
        assert len(placement.edge_nodes) == 2

    def test_no_topology_builds_nothing(self):
        descriptor = load_descriptor(DESCRIPTOR)
        assert descriptor.topology is None
        assert descriptor.network_config() is None
        assert descriptor.placement_config() is None

    def test_placement_records_parsed(self):
        descriptor = load_descriptor(TOPOLOGY_DESCRIPTOR)
        placed, unplaced = descriptor.entities
        assert placed.placement.node == "cab-north"
        assert placed.placement.tier.value == "edge"
        assert unplaced.placement is None

    def test_unknown_tier_rejected(self):
        from repro.errors import PlacementError

        bad = {"entities": [
            {"type": "Sensor", "id": "x", "driver": "d",
             "placement": {"tier": "orbit"}},
        ]}
        with pytest.raises(PlacementError, match="orbit"):
            load_descriptor(bad)

    def test_undeclared_node_rejected(self):
        from repro.errors import PlacementError

        bad = dict(TOPOLOGY_DESCRIPTOR)
        bad["entities"] = [
            {"type": "Sensor", "id": "x", "driver": "d",
             "placement": {"tier": "edge", "node": "cab-ghost"}},
        ]
        with pytest.raises(PlacementError, match="cab-ghost") as excinfo:
            load_descriptor(bad)
        assert excinfo.value.node == "cab-ghost"

    def test_malformed_hop_profile_rejected(self):
        with pytest.raises(BindingError, match="wan"):
            load_descriptor({
                "topology": {"hops": {"wan": {"speed": 3}}},
                "entities": [],
            })

    def test_apply_assigns_edge_nodes(self, catalog):
        from repro.runtime.config import RuntimeConfig

        descriptor = load_descriptor(TOPOLOGY_DESCRIPTOR)
        application = Application(
            analyze(DESIGN),
            RuntimeConfig(
                network=descriptor.network_config(),
                placement=descriptor.placement_config(),
            ),
        )
        application.implement("Sweep", SweepImpl())
        deployment = apply_descriptor(application, descriptor, catalog)
        deployment.deploy()
        deployment.launch()
        # The explicit assignment from the descriptor wins over
        # attribute ownership.
        instance = application.registry.get("s1")
        assert (
            application.placement.node_for(instance, "zone") == "cab-north"
        )


class TestShardSection:
    """``topology.shard`` → an enabled ShardConfig."""

    def test_shard_section_parses(self):
        descriptor = load_descriptor(
            {
                "topology": {
                    "shard": {
                        "workers": 3,
                        "wire_format": "columnar",
                        "delta_sync": True,
                        "local_cache": False,
                    }
                },
                "entities": [],
            }
        )
        shard = descriptor.shard_config()
        assert shard.enabled is True
        assert shard.workers == 3
        assert shard.wire_format == "columnar"
        assert shard.delta_sync is True
        assert shard.local_cache is False

    def test_shard_section_defaults_enabled(self):
        descriptor = load_descriptor(
            {"topology": {"shard": {}}, "entities": []}
        )
        assert descriptor.shard_config().enabled is True

    def test_no_shard_section_builds_nothing(self):
        assert load_descriptor({"entities": []}).shard_config() is None
        assert (
            load_descriptor(
                {"topology": {}, "entities": []}
            ).shard_config()
            is None
        )

    def test_overrides_win(self):
        descriptor = load_descriptor(
            {"topology": {"shard": {"workers": 2}}, "entities": []}
        )
        assert descriptor.shard_config(workers=8).workers == 8

    def test_unknown_shard_field_rejected(self):
        with pytest.raises(BindingError, match="pipes"):
            load_descriptor(
                {"topology": {"shard": {"pipes": 2}}, "entities": []}
            )

    def test_invalid_shard_value_fails_at_load(self):
        with pytest.raises(BindingError, match="wire_format"):
            load_descriptor(
                {
                    "topology": {"shard": {"wire_format": "json"}},
                    "entities": [],
                }
            )
