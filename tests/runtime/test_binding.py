"""Binding times: configuration / deployment / launch / runtime (§IV)."""

import pytest

from repro.errors import BindingError
from repro.runtime.app import Application
from repro.runtime.binding import BindingTime, Deployment
from repro.runtime.component import Context
from repro.runtime.device import CallableDriver, DeviceInstance
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor { source reading as Float; }
context Sweep as Integer {
    when periodic reading from Sensor <1 min>
    always publish;
}
"""


class SweepImpl(Context):
    def __init__(self):
        super().__init__()
        self.sizes = []

    def on_periodic_reading(self, readings, discover):
        self.sizes.append(len(readings))
        return len(readings)


def make_sensor(design, entity_id):
    return DeviceInstance(
        design.devices["Sensor"],
        entity_id,
        CallableDriver(sources={"reading": lambda: 1.0}),
    )


@pytest.fixture
def setup():
    design = analyze(DESIGN)
    app = Application(design)
    app.implement("Sweep", SweepImpl())
    return design, app, Deployment(app)


class TestStagingPhases:
    def test_configuration_binds_immediately(self, setup):
        design, app, deployment = setup
        deployment.stage(make_sensor(design, "c1"),
                         BindingTime.CONFIGURATION)
        assert len(app.registry) == 1

    def test_deployment_binds_on_deploy(self, setup):
        design, app, deployment = setup
        deployment.stage(make_sensor(design, "d1"), BindingTime.DEPLOYMENT)
        assert len(app.registry) == 0
        assert deployment.deploy() == 1
        assert len(app.registry) == 1

    def test_launch_binds_then_starts(self, setup):
        design, app, deployment = setup
        deployment.stage(make_sensor(design, "l1"), BindingTime.LAUNCH)
        deployment.deploy()
        deployment.launch()
        assert app.started
        assert len(app.registry) == 1

    def test_launch_requires_deploy_first(self, setup):
        design, app, deployment = setup
        deployment.stage(make_sensor(design, "d1"), BindingTime.DEPLOYMENT)
        with pytest.raises(BindingError, match="deploy"):
            deployment.launch()

    def test_runtime_binding_joins_running_app(self, setup):
        design, app, deployment = setup
        deployment.stage(make_sensor(design, "d1"), BindingTime.DEPLOYMENT)
        deployment.stage(make_sensor(design, "r1"), BindingTime.RUNTIME)
        deployment.deploy()
        deployment.launch()
        app.advance(60)
        assert deployment.bind_runtime() == 1
        app.advance(60)
        sweep = app.implementation("Sweep")
        assert sweep.sizes == [1, 2]

    def test_runtime_binding_requires_started_app(self, setup):
        design, app, deployment = setup
        deployment.stage(make_sensor(design, "r1"), BindingTime.RUNTIME)
        with pytest.raises(BindingError, match="started"):
            deployment.bind_runtime()

    def test_phase_tracking(self, setup):
        design, app, deployment = setup
        assert deployment.phase is BindingTime.CONFIGURATION
        deployment.deploy()
        assert deployment.phase is BindingTime.DEPLOYMENT
        deployment.launch()
        assert deployment.phase is BindingTime.RUNTIME

    def test_staged_count(self, setup):
        design, app, deployment = setup
        deployment.stage(make_sensor(design, "r1"), BindingTime.RUNTIME)
        deployment.stage(make_sensor(design, "r2"), BindingTime.RUNTIME)
        assert deployment.staged_count(BindingTime.RUNTIME) == 2
        deployment.launch()
        deployment.bind_runtime()
        assert deployment.staged_count(BindingTime.RUNTIME) == 0
