"""Grouping and windowed accumulation, with property-based invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import BindingError
from repro.runtime.device import CallableDriver, DeviceInstance
from repro.runtime.grouping import WindowAccumulator, group_readings
from repro.sema.analyzer import analyze

DESIGN = """\
device PresenceSensor {
    attribute parkingLot as LotEnum;
    source presence as Boolean;
}
device Plain { source x as Float; }
enumeration LotEnum { A22, B16, D6 }
"""


@pytest.fixture(scope="module")
def design():
    return analyze(DESIGN)


def sensor(design, entity_id, lot):
    return DeviceInstance(
        design.devices["PresenceSensor"],
        entity_id,
        CallableDriver(sources={"presence": lambda: True}),
        {"parkingLot": lot},
    )


class TestGroupReadings:
    def test_partition_by_attribute(self, design):
        readings = [
            (sensor(design, "s1", "A22"), True),
            (sensor(design, "s2", "B16"), False),
            (sensor(design, "s3", "A22"), False),
        ]
        grouped = group_readings(readings, "parkingLot")
        assert grouped == {"A22": [True, False], "B16": [False]}

    def test_group_key_order_is_first_encounter(self, design):
        readings = [
            (sensor(design, "s1", "B16"), True),
            (sensor(design, "s2", "A22"), True),
        ]
        assert list(group_readings(readings, "parkingLot")) == ["B16", "A22"]

    def test_empty_readings(self):
        assert group_readings([], "parkingLot") == {}

    def test_missing_attribute_rejected(self, design):
        plain = DeviceInstance(
            design.devices["Plain"],
            "p1",
            CallableDriver(sources={"x": lambda: 0.0}),
        )
        with pytest.raises(BindingError, match="no attribute"):
            group_readings([(plain, 0.0)], "parkingLot")


class TestWindowAccumulator:
    def test_flattening_accumulation(self):
        window = WindowAccumulator(deliveries_per_window=2, flatten=True)
        assert window.add({"A": [True], "B": [False]}) is None
        result = window.add({"A": [False]})
        assert result == {"A": [True, False], "B": [False]}

    def test_non_flatten_appends_whole_values(self):
        window = WindowAccumulator(deliveries_per_window=2, flatten=False)
        window.add({"A": 3})
        result = window.add({"A": 5})
        assert result == {"A": [3, 5]}

    def test_window_resets_after_completion(self):
        window = WindowAccumulator(deliveries_per_window=1, flatten=False)
        assert window.add({"A": 1}) == {"A": [1]}
        assert window.add({"A": 2}) == {"A": [2]}

    def test_pending_counter(self):
        window = WindowAccumulator(deliveries_per_window=3, flatten=False)
        window.add({})
        assert window.pending_deliveries == 1
        window.add({})
        window.add({})
        assert window.pending_deliveries == 0

    def test_for_design_rounding(self):
        window = WindowAccumulator.for_design(600.0, 86400.0, flatten=True)
        assert window.deliveries_per_window == 144

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            WindowAccumulator(0, flatten=True)

    def test_groups_appearing_mid_window(self):
        window = WindowAccumulator(deliveries_per_window=2, flatten=True)
        window.add({"A": [1]})
        result = window.add({"A": [2], "B": [9]})
        assert result == {"A": [1, 2], "B": [9]}


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------

reading_lists = st.lists(
    st.tuples(st.sampled_from(["A22", "B16", "D6"]), st.booleans()),
    max_size=60,
)


@given(reading_lists)
def test_grouping_preserves_every_reading(design_readings):
    design = analyze(DESIGN)
    readings = [
        (
            DeviceInstance(
                design.devices["PresenceSensor"],
                f"s{i}",
                CallableDriver(sources={"presence": lambda: True}),
                {"parkingLot": lot},
            ),
            value,
        )
        for i, (lot, value) in enumerate(design_readings)
    ]
    grouped = group_readings(readings, "parkingLot")
    total = sum(len(values) for values in grouped.values())
    assert total == len(readings)
    for lot, values in grouped.items():
        expected = [v for l, v in design_readings if l == lot]
        assert values == expected


@given(
    st.lists(
        st.dictionaries(
            st.sampled_from("ABC"), st.lists(st.integers(), max_size=4),
            max_size=3,
        ),
        min_size=1,
        max_size=12,
    ),
    st.integers(min_value=1, max_value=4),
)
def test_window_never_loses_values(deliveries, per_window):
    window = WindowAccumulator(per_window, flatten=True)
    released = {}
    for delivery in deliveries:
        result = window.add(delivery)
        if result is not None:
            for key, values in result.items():
                released.setdefault(key, []).extend(values)
    # everything released + still buffered == everything added
    buffered = window._buffer
    for key in set(released) | set(buffered):
        total = released.get(key, []) + buffered.get(key, [])
        expected = [
            value
            for delivery in deliveries
            for value in delivery.get(key, [])
        ]
        assert total == expected
