"""Process-sharded runtime: equivalence, routing, lifecycle, metrics.

The load-bearing invariant mirrors the batch/cache suites:
``ShardConfig(enabled=True)`` changes *where* sweeps run (worker
processes), never *what* they deliver — for any fleet size, worker
count and cache/batch combination, the context deliveries, window
closures and published values are identical to the single-process run.
A second family pins the cross-shard router: publishes, queries and
actions on remote entities behave exactly as local ones.
"""

import multiprocessing
import os
import weakref

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Application,
    BatchConfig,
    CacheConfig,
    Context,
    RuntimeConfig,
    ShardBootstrap,
    ShardConfig,
    ShardContext,
    ShardError,
    ShardedRuntime,
    SimulatedFleetBootstrap,
    analyze,
)
from repro.errors import BindingError
from repro.mapreduce.partition import shard_index
from repro.simulation.sensors import FleetSubstrate, SubstrateDriver

DESIGN = """\
device ShardPresence {
    attribute parkingLot as LotEnum;
    source presence as Boolean;
    action tag(label as String);
}
enumeration LotEnum { A22, B16, D6 }

context FreeCount as Integer {
    when periodic presence from ShardPresence <10 min>
    grouped by parkingLot
    with map as Boolean reduce as Integer
    always publish;
}

context Windowed as Integer {
    when periodic presence from ShardPresence <10 min>
    grouped by parkingLot every <30 min>
    always publish;
}

context Pushes as Integer {
    when provided presence from ShardPresence
    always publish;
}
"""

LOTS = ("A22", "B16", "D6")
PERIOD = 600.0


class FreeCountImpl(Context):
    """Non-associative reduce (``len``) — the hardest case for a
    sharded shuffle, exact only if raw map emissions are re-sequenced
    into the single-process order before one final reduce."""

    def __init__(self):
        super().__init__()
        self.deliveries = []

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, True)

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, len(values))

    def on_periodic_presence(self, by_lot, discover):
        self.deliveries.append(dict(by_lot))
        return sum(by_lot.values())


class WindowedImpl(Context):
    def __init__(self):
        super().__init__()
        self.windows = []

    def on_periodic_presence(self, window_by_lot, discover):
        self.windows.append(
            {lot: list(values) for lot, values in window_by_lot.items()}
        )
        return sum(len(v) for v in window_by_lot.values())


class PushesImpl(Context):
    def __init__(self):
        super().__init__()
        self.events = []

    def on_presence(self, event, discover):
        self.events.append(
            (event.device.entity_id, event.value, event.timestamp)
        )
        return len(self.events)


class TaggingDriver(SubstrateDriver):
    def do_tag(self, label):
        if label == "boom":
            error = RuntimeError("action exploded")
            error.payload = lambda: None  # unpicklable across the pipe
            raise error
        return f"{self.instance.entity_id}:{label}"


# Per-process substrate, keyed by the application it serves, so
# ``bind_entity`` can build drivers inside an already-built worker.
_SUBSTRATES = weakref.WeakKeyDictionary()


class PresenceBootstrap(ShardBootstrap):
    """Test bootstrap over the shared-substrate presence fleet.

    Not a frozen dataclass on purpose: the fork start method inherits
    it, which is all these tests need, and plain attributes keep the
    parameter grid simple.
    """

    def __init__(self, sensors=9, seed=7, shard=None, batch=None, cache=None):
        self.sensors = sensors
        self.seed = seed
        self.shard = shard
        self.batch = batch
        self.cache = cache

    def fleet(self):
        return [f"s-{index:03d}" for index in range(self.sensors)]

    def build(self, ctx):
        config = RuntimeConfig(
            shard=self.shard if self.shard is not None else ShardConfig(),
            batch=self.batch if self.batch is not None else BatchConfig(),
            cache=self.cache if self.cache is not None else CacheConfig(),
        )
        app = Application(analyze(DESIGN), config)
        app.implement("FreeCount", FreeCountImpl())
        app.implement("Windowed", WindowedImpl())
        app.implement("Pushes", PushesImpl())
        substrate = FleetSubstrate(
            app.clock,
            seed=self.seed,
            models={"presence": lambda draw: draw < 0.5},
        )
        for position, entity_id in enumerate(self.fleet()):
            if ctx.owns(entity_id):
                app.create_device(
                    "ShardPresence",
                    entity_id,
                    TaggingDriver(substrate, sources=("presence",)),
                    parkingLot=LOTS[position % len(LOTS)],
                )
        _SUBSTRATES[app] = substrate
        return app

    def bind_entity(self, app, entity_id, position):
        substrate = _SUBSTRATES[app]
        app.create_device(
            "ShardPresence",
            entity_id,
            TaggingDriver(substrate, sources=("presence",)),
            parkingLot=LOTS[position % len(LOTS)],
        )


def run_scenario(bootstrap, periods=4, publishes=(), queries=()):
    """Drive one runtime and capture every observable output."""
    runtime = ShardedRuntime(bootstrap)
    published = []
    for name in ("FreeCount", "Windowed", "Pushes"):
        runtime.app.bus.subscribe(
            ("context", name),
            lambda event, name=name: published.append(
                (name, event.value, event.timestamp)
            ),
        )
    runtime.start()
    try:
        runtime.advance(periods / 2 * PERIOD)
        for entity_id, value in publishes:
            runtime.publish(entity_id, "presence", value)
        runtime.advance(periods / 2 * PERIOD)
        reads = [
            runtime.query(entity_id, "presence") for entity_id in queries
        ]
        free = runtime.app.implementation("FreeCount")
        windowed = runtime.app.implementation("Windowed")
        pushes = runtime.app.implementation("Pushes")
        return {
            "published": published,
            "deliveries": free.deliveries,
            "windows": windowed.windows,
            "events": pushes.events,
            "reads": reads,
            "gather_errors": runtime.app._gather_errors,
        }
    finally:
        runtime.stop()


class TestShardConfig:
    def test_defaults_are_off(self):
        config = ShardConfig()
        assert config.enabled is False
        assert config.workers == 4
        assert config.start_method is None
        assert config.wire_format == "columnar"
        assert config.delta_sync is True
        assert config.local_cache is True

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardConfig(workers=0)
        with pytest.raises(ValueError):
            ShardConfig(start_method="threads")
        with pytest.raises(ValueError):
            ShardConfig(wire_format="json")

    def test_wire_knobs_coerce_to_bool(self):
        config = ShardConfig(delta_sync=0, local_cache=1)
        assert config.delta_sync is False
        assert config.local_cache is True

    def test_runtime_config_field(self):
        config = RuntimeConfig(shard=ShardConfig(enabled=True, workers=2))
        assert config.shard.workers == 2
        with pytest.raises(TypeError):
            RuntimeConfig(shard="sharded")
        assert "ShardConfig" in RuntimeConfig().describe()["shard"]


class TestShardContext:
    def test_partition_is_total_and_disjoint(self):
        fleet = [f"e-{i}" for i in range(50)]
        contexts = [ShardContext(shards=4, index=i) for i in range(4)]
        for entity_id in fleet:
            owners = [c.index for c in contexts if c.owns(entity_id)]
            assert owners == [shard_index(entity_id, 4)]

    def test_coordinator_owns_nothing(self):
        ctx = ShardContext(shards=4, index=None)
        assert ctx.is_coordinator
        assert not ctx.owns("e-1")

    def test_single_shard_owns_everything(self):
        ctx = ShardContext(shards=1, index=0)
        assert all(ctx.owns(f"e-{i}") for i in range(20))


class TestEquivalence:
    """sharded-on == sharded-off, byte for byte."""

    @settings(max_examples=6, deadline=None)
    @given(
        sensors=st.integers(min_value=1, max_value=14),
        workers=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
        batch=st.booleans(),
        cache=st.booleans(),
        wire=st.sampled_from(["rows", "columnar"]),
        delta=st.booleans(),
    )
    def test_sweeps_windows_and_events_match(
        self, sensors, workers, seed, batch, cache, wire, delta
    ):
        def bootstrap(shard):
            return PresenceBootstrap(
                sensors=sensors,
                seed=seed,
                shard=shard,
                batch=BatchConfig(enabled=batch, min_column=2),
                cache=CacheConfig(enabled=cache),
            )

        publishes = [(f"s-{sensors // 2:03d}", True)]
        queries = [f"s-{sensors - 1:03d}", "s-000"]
        single = run_scenario(
            bootstrap(ShardConfig(enabled=False)),
            publishes=publishes,
            queries=queries,
        )
        sharded = run_scenario(
            bootstrap(
                ShardConfig(
                    enabled=True,
                    workers=workers,
                    wire_format=wire,
                    delta_sync=delta,
                )
            ),
            publishes=publishes,
            queries=queries,
        )
        assert sharded == single

    def test_workers_exceeding_fleet(self):
        single = run_scenario(
            PresenceBootstrap(sensors=2, shard=ShardConfig(enabled=False))
        )
        sharded = run_scenario(
            PresenceBootstrap(
                sensors=2, shard=ShardConfig(enabled=True, workers=4)
            )
        )
        assert sharded == single

    def test_spawn_start_method_smoke(self):
        """The picklable library bootstrap survives spawn workers."""
        baseline = SimulatedFleetBootstrap(
            count=8, seed=5, shard=ShardConfig(enabled=False)
        )
        spawned = SimulatedFleetBootstrap(
            count=8,
            seed=5,
            shard=ShardConfig(
                enabled=True, workers=2, start_method="spawn"
            ),
        )

        def zone_loads(bootstrap):
            runtime = ShardedRuntime(bootstrap)
            seen = []
            runtime.app.bus.subscribe(
                ("context", "ZoneLoad"),
                lambda event: seen.append((event.value, event.timestamp)),
            )
            runtime.start()
            try:
                runtime.advance(120.0)
            finally:
                runtime.stop()
            return seen

        assert zone_loads(spawned) == zone_loads(baseline)


class TestRouting:
    def test_cross_shard_publish_reaches_every_shard_owner(self):
        """Publishes route by entity hash and replay identically for
        entities living on every different shard."""
        sensors = 9
        fleet = [f"s-{index:03d}" for index in range(sensors)]
        workers = 3
        by_shard = {}
        for entity_id in fleet:
            by_shard.setdefault(shard_index(entity_id, workers), entity_id)
        assert len(by_shard) > 1  # the fleet really is spread out
        publishes = [(entity_id, True) for entity_id in by_shard.values()]
        single = run_scenario(
            PresenceBootstrap(
                sensors=sensors, shard=ShardConfig(enabled=False)
            ),
            publishes=publishes,
        )
        sharded = run_scenario(
            PresenceBootstrap(
                sensors=sensors,
                shard=ShardConfig(enabled=True, workers=workers),
            ),
            publishes=publishes,
        )
        assert sharded == single
        assert [e[0] for e in sharded["events"]] == list(by_shard.values())

    def test_act_routes_to_owning_shard(self):
        runtime = ShardedRuntime(
            PresenceBootstrap(
                sensors=6, shard=ShardConfig(enabled=True, workers=2)
            )
        )
        runtime.start()
        try:
            assert runtime.act("s-004", "tag", label="x") == "s-004:x"
        finally:
            runtime.stop()

    def test_unknown_entity_raises_through_router(self):
        runtime = ShardedRuntime(
            PresenceBootstrap(
                sensors=3, shard=ShardConfig(enabled=True, workers=2)
            )
        )
        runtime.start()
        try:
            with pytest.raises(BindingError):
                runtime.query("nope", "presence")
        finally:
            runtime.stop()


class TestLifecycle:
    def test_double_start_raises(self):
        runtime = ShardedRuntime(
            PresenceBootstrap(sensors=3, shard=ShardConfig(enabled=False))
        )
        runtime.start()
        try:
            with pytest.raises(ShardError):
                runtime.start()
        finally:
            runtime.stop()

    def test_disabled_mode_spawns_no_workers(self):
        before = multiprocessing.active_children()
        runtime = ShardedRuntime(
            PresenceBootstrap(sensors=3, shard=ShardConfig(enabled=False))
        )
        runtime.start()
        try:
            assert multiprocessing.active_children() == before
            assert len(runtime.router) == 0
            assert runtime.worker_stats() == []
        finally:
            runtime.stop()

    def test_stop_reaps_workers(self):
        runtime = ShardedRuntime(
            PresenceBootstrap(
                sensors=6, shard=ShardConfig(enabled=True, workers=2)
            )
        )
        runtime.start()
        children = [
            p
            for p in multiprocessing.active_children()
            if p.name.startswith("repro-shard-")
        ]
        assert len(children) == 2
        runtime.stop()
        assert not any(p.is_alive() for p in children)
        assert len(runtime.router) == 0

    def test_worker_stats_shape(self):
        runtime = ShardedRuntime(
            PresenceBootstrap(
                sensors=9, shard=ShardConfig(enabled=True, workers=3)
            )
        )
        runtime.start()
        try:
            stats = runtime.worker_stats()
            assert [s["shard"] for s in stats] == [0, 1, 2]
            assert sum(s["bound_entities"] for s in stats) == 9
        finally:
            runtime.stop()


class TestMetrics:
    def test_shard_metric_families_exported(self):
        runtime = ShardedRuntime(
            PresenceBootstrap(
                sensors=6, shard=ShardConfig(enabled=True, workers=2)
            )
        )
        runtime.start()
        try:
            runtime.advance(PERIOD)
            runtime.query("s-001", "presence")
            runtime.publish("s-002", "presence", True)
            rendered = runtime.app.metrics.render_prometheus()
            for family in (
                "shard_sweeps_total",
                "shard_merge_pairs_total",
                "shard_remote_reads_total",
                "shard_workers",
                "shard_commands_total",
                "shard_events_routed_total",
                "shard_publishes_forwarded_total",
                "shard_errors_total",
                "shard_wire_bytes_total",
                "shard_delta_rows_total",
            ):
                assert family in rendered
            stats = runtime.stats()
            assert stats["workers"] == 2
            assert stats["sweeps"] >= 2
            assert stats["remote_reads"] == 1
            assert stats["router"]["publishes_forwarded"] == 1
            assert stats["router"]["events_routed"] >= 1
            assert stats["router"]["errors"] == 0
            assert stats["router"]["wire_bytes"] > 0
            # Default wire settings are columnar+delta: the first sweep
            # registers every reading, later sweeps ship only changes.
            assert stats["delta_rows"] >= 6
            assert stats["quiescent_rows"] >= 0
        finally:
            runtime.stop()


class TestWireProtocol:
    """Every wire encoding delivers byte-identical results, and the
    delta protocol actually suppresses quiescent rows."""

    @pytest.mark.parametrize(
        "wire,delta",
        [("rows", False), ("columnar", False), ("columnar", True)],
    )
    def test_encodings_identical(self, wire, delta):
        publishes = [("s-004", True)]
        queries = ["s-000", "s-008"]
        single = run_scenario(
            PresenceBootstrap(sensors=9, shard=ShardConfig(enabled=False)),
            publishes=publishes,
            queries=queries,
        )
        sharded = run_scenario(
            PresenceBootstrap(
                sensors=9,
                shard=ShardConfig(
                    enabled=True,
                    workers=3,
                    wire_format=wire,
                    delta_sync=delta,
                ),
            ),
            publishes=publishes,
            queries=queries,
        )
        assert sharded == single

    def test_delta_ships_fewer_bytes_than_rows(self):
        def wire_bytes(wire, delta):
            runtime = ShardedRuntime(
                PresenceBootstrap(
                    sensors=12,
                    seed=3,
                    shard=ShardConfig(
                        enabled=True,
                        workers=2,
                        wire_format=wire,
                        delta_sync=delta,
                    ),
                )
            )
            runtime.start()
            try:
                runtime.advance(6 * PERIOD)
                return runtime.stats()["router"]["wire_bytes"]
            finally:
                runtime.stop()

        assert wire_bytes("columnar", True) < wire_bytes("rows", False)

    def test_delta_counts_quiescent_rows(self):
        runtime = ShardedRuntime(
            PresenceBootstrap(
                sensors=9,
                shard=ShardConfig(enabled=True, workers=3),
            )
        )
        runtime.start()
        try:
            runtime.advance(4 * PERIOD)
            stats = runtime.stats()
            # The grouped gather registers all 9 readings on sweep one;
            # the substrate keeps some sensors steady across the later
            # sweeps, so those rows cross as quiescent counts instead.
            assert stats["delta_rows"] >= 9
            assert stats["quiescent_rows"] > 0
        finally:
            runtime.stop()


class TestRepartitioning:
    """Dynamic rebind/unbind route to the owning worker and stay
    byte-identical to a single-process late bind/unbind."""

    def run_repartition(self, shard):
        runtime = ShardedRuntime(
            PresenceBootstrap(sensors=6, seed=11, shard=shard)
        )
        published = []
        for name in ("FreeCount", "Windowed", "Pushes"):
            runtime.app.bus.subscribe(
                ("context", name),
                lambda event, name=name: published.append(
                    (name, event.value, event.timestamp)
                ),
            )
        runtime.start()
        try:
            runtime.advance(2 * PERIOD)
            runtime.rebind("s-006")
            runtime.unbind("s-002")
            runtime.advance(2 * PERIOD)
            free = runtime.app.implementation("FreeCount")
            return {
                "published": published,
                "deliveries": free.deliveries,
                "read": runtime.query("s-006", "presence"),
                "tag": runtime.act("s-006", "tag", label="new"),
            }
        finally:
            runtime.stop()

    def test_rebind_unbind_identity(self):
        single = self.run_repartition(ShardConfig(enabled=False))
        sharded = self.run_repartition(
            ShardConfig(enabled=True, workers=3)
        )
        assert sharded == single
        assert sharded["tag"] == "s-006:new"

    def test_unbound_entity_routes_binding_error(self):
        runtime = ShardedRuntime(
            PresenceBootstrap(
                sensors=6, shard=ShardConfig(enabled=True, workers=2)
            )
        )
        runtime.start()
        try:
            runtime.unbind("s-001")
            with pytest.raises(BindingError):
                runtime.query("s-001", "presence")
        finally:
            runtime.stop()

    def test_default_bootstrap_refuses_dynamic_bind(self):
        class StaticBootstrap(PresenceBootstrap):
            bind_entity = ShardBootstrap.bind_entity

        runtime = ShardedRuntime(
            StaticBootstrap(sensors=3, shard=ShardConfig(enabled=False))
        )
        runtime.start()
        try:
            with pytest.raises(ShardError):
                runtime.rebind("s-003")
        finally:
            runtime.stop()


class TestCacheInvalidation:
    """Cross-shard cohort invalidations piggyback on the next command
    reaching each worker's local cache."""

    def test_publish_invalidates_remote_cohorts(self):
        workers = 3
        runtime = ShardedRuntime(
            PresenceBootstrap(
                sensors=9,
                shard=ShardConfig(enabled=True, workers=workers),
                cache=CacheConfig(
                    enabled=True,
                    ttl_seconds=1e9,
                    shard_attribute="parkingLot",
                ),
            )
        )
        runtime.start()
        try:
            runtime.advance(PERIOD)  # sweeps fill every worker cache
            fleet = [f"s-{index:03d}" for index in range(9)]
            pairs = [
                (a, b)
                for pa, a in enumerate(fleet)
                for pb, b in enumerate(fleet)
                if pa != pb
                and LOTS[pa % len(LOTS)] == LOTS[pb % len(LOTS)]
                and shard_index(a, workers) != shard_index(b, workers)
            ]
            assert pairs, "no same-lot pair straddles two shards"
            publisher, remote = pairs[0]
            before = runtime.worker_stats()
            runtime.publish(publisher, "presence", True)
            runtime.query(remote, "presence")  # carries the cohort drop
            after = runtime.worker_stats()
            target = shard_index(remote, workers)
            assert (
                after[target]["cache"]["invalidations"]
                > before[target]["cache"]["invalidations"]
            )
        finally:
            runtime.stop()

    def test_local_cache_off_strips_worker_caches(self):
        runtime = ShardedRuntime(
            PresenceBootstrap(
                sensors=6,
                shard=ShardConfig(
                    enabled=True, workers=2, local_cache=False
                ),
                cache=CacheConfig(enabled=True),
            )
        )
        runtime.start()
        try:
            runtime.advance(PERIOD)
            for stats in runtime.worker_stats():
                assert stats["cache"] is None
        finally:
            runtime.stop()


class TestRouterFailures:
    """Worker death and worker-side errors surface as typed ShardErrors
    naming the shard, and stop() still reaps the survivors."""

    def _running_runtime(self, workers=2):
        runtime = ShardedRuntime(
            PresenceBootstrap(
                sensors=6, shard=ShardConfig(enabled=True, workers=workers)
            )
        )
        runtime.start()
        return runtime

    def test_worker_death_mid_run_raises_shard_error(self):
        runtime = self._running_runtime()
        children = sorted(
            (
                p
                for p in multiprocessing.active_children()
                if p.name.startswith("repro-shard-")
            ),
            key=lambda p: p.name,
        )
        try:
            children[0].terminate()
            children[0].join(timeout=10)
            with pytest.raises(ShardError):
                runtime.advance(PERIOD)
        finally:
            runtime.stop()
        assert not any(p.is_alive() for p in children)

    def test_stop_after_crash_reaps_survivors(self):
        runtime = self._running_runtime(workers=3)
        children = [
            p
            for p in multiprocessing.active_children()
            if p.name.startswith("repro-shard-")
        ]
        assert len(children) == 3
        children[1].terminate()
        children[1].join(timeout=10)
        runtime.stop()
        assert not any(p.is_alive() for p in children)
        assert len(runtime.router) == 0

    def test_worker_error_reply_names_shard(self):
        runtime = self._running_runtime(workers=2)
        try:
            with pytest.raises(ShardError) as excinfo:
                runtime.act("s-001", "tag", label="boom")
            # The unpicklable worker exception degrades to a ShardError
            # carrying its repr and the shard that raised it.
            assert excinfo.value.shard == shard_index("s-001", 2)
            assert "action exploded" in str(excinfo.value)
            # The worker survives the error and keeps serving.
            assert runtime.act("s-001", "tag", label="ok") == "s-001:ok"
        finally:
            runtime.stop()


@pytest.mark.skipif(os.name != "posix", reason="fork start method")
class TestShardScalingShape:
    """Tiny-scale sanity check of the benchmark's scaling claim: the
    modeled gateway service time overlaps across worker processes."""

    def test_workers_overlap_modeled_latency(self):
        import time

        def timed(workers):
            bootstrap = SimulatedFleetBootstrap(
                count=400,
                service_time=0.001,
                batch=True,
                shard=ShardConfig(enabled=workers > 1, workers=workers),
            )
            runtime = ShardedRuntime(bootstrap)
            runtime.start()
            try:
                start = time.perf_counter()
                runtime.advance(60.0)
                return time.perf_counter() - start
            finally:
                runtime.stop()

        serial = timed(1)
        sharded = timed(4)
        # 400 devices x 1ms = 0.4s serial; 4 workers ~0.1s each.  Gate
        # loosely — CI boxes are noisy — the real gate lives in
        # benchmarks/bench_shard_scaling.py.
        assert sharded < serial
