"""The execution tracer."""

import pytest

from repro.apps.cooker import build_cooker_app
from repro.runtime.tracing import TraceEntry, Tracer


@pytest.fixture
def traced_app():
    app = build_cooker_app(threshold_seconds=3, renotify_seconds=60)
    tracer = Tracer(app.application).attach()
    return app, tracer


class TestRecording:
    def test_source_events_recorded(self, traced_app):
        app, tracer = traced_app
        app.advance(2)
        sources = tracer.of_kind("source")
        assert len(sources) == 2
        assert sources[0].subject == "wall-clock"
        assert sources[0].detail == "tickSecond"

    def test_context_publications_recorded(self, traced_app):
        app, tracer = traced_app
        app.environment.set_cooker(True)
        app.advance(3)
        contexts = tracer.of_kind("context")
        assert [entry.subject for entry in contexts] == ["Alert"]
        assert contexts[0].value == 3

    def test_actions_recorded(self, traced_app):
        app, tracer = traced_app
        app.environment.set_cooker(True)
        app.advance(3)
        actions = tracer.of_kind("action")
        assert actions
        assert actions[0].subject == "tv-living-room"
        assert actions[0].detail == "askQuestion"

    def test_ordering_follows_the_chain(self, traced_app):
        app, tracer = traced_app
        app.environment.set_cooker(True)
        app.advance(3)
        kinds = [entry.kind for entry in tracer.entries[-3:]]
        assert kinds == ["source", "context", "action"]

    def test_tracing_does_not_change_behaviour(self):
        def run(traced):
            app = build_cooker_app(threshold_seconds=3)
            if traced:
                Tracer(app.application).attach()
            app.environment.set_cooker(True)
            app.advance(10)
            return app.application.stats["context_activations"]

        assert run(False) == run(True)


class TestQueries:
    def test_between(self, traced_app):
        app, tracer = traced_app
        app.advance(5)
        window = tracer.between(2.0, 4.0)
        assert {entry.timestamp for entry in window} == {2.0, 3.0}

    def test_find_with_predicate(self, traced_app):
        app, tracer = traced_app
        app.advance(5)
        late = tracer.find(
            kind="source", predicate=lambda e: e.value >= 4
        )
        assert [entry.value for entry in late] == [4, 5]

    def test_find_by_subject(self, traced_app):
        app, tracer = traced_app
        app.advance(3)
        assert len(tracer.find(subject="wall-clock")) == 3


class TestRendering:
    def test_render_lines(self, traced_app):
        app, tracer = traced_app
        app.environment.set_cooker(True)
        app.advance(3)
        text = tracer.render()
        assert "source   wall-clock.tickSecond" in text
        assert "context  Alert published 3" in text
        assert "action   askQuestion on tv-living-room" in text

    def test_render_limit(self, traced_app):
        app, tracer = traced_app
        app.advance(10)
        assert len(tracer.render(limit=2).splitlines()) == 2

    def test_timestamp_format(self):
        entry = TraceEntry(3723.5, "context", "X", "", 1)
        assert entry.render().startswith("001:02:03.500")


class TestLifecycle:
    def test_capacity_bound(self):
        app = build_cooker_app(threshold_seconds=10 ** 6)
        tracer = Tracer(app.application, capacity=5).attach()
        app.advance(20)
        assert len(tracer) == 5
        assert tracer.dropped == 15
        assert "dropped" in tracer.render()

    def test_detach_stops_recording(self, traced_app):
        app, tracer = traced_app
        app.advance(2)
        tracer.detach()
        app.advance(5)
        assert len(tracer.of_kind("source")) == 2

    def test_detach_restores_act(self, traced_app):
        app, tracer = traced_app
        instance = app.application.registry.get("tv-living-room")
        tracer.detach()
        assert instance.act.__name__ != "traced_act"

    def test_double_attach_rejected(self, traced_app):
        __, tracer = traced_app
        with pytest.raises(RuntimeError):
            tracer.attach()

    def test_runtime_bound_devices_are_traced(self, traced_app):
        app, tracer = traced_app
        from repro.runtime.device import CallableDriver

        hits = []
        app.application.create_device(
            "Cooker", "cooker-2",
            CallableDriver(sources={"consumption": lambda: 0.0},
                           actions={"Off": lambda: hits.append(1)}),
        )
        app.application.registry.get("cooker-2").act("Off")
        assert tracer.find(subject="cooker-2", kind="action")

    def test_clear(self, traced_app):
        app, tracer = traced_app
        app.advance(3)
        tracer.clear()
        assert len(tracer) == 0

    def test_invalid_capacity(self, traced_app):
        app, __ = traced_app
        with pytest.raises(ValueError):
            Tracer(app.application, capacity=0)
