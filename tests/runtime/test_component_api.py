"""Component base classes and helpers."""

import pytest

from repro.errors import RuntimeOrchestrationError
from repro.lang.parser import parse
from repro.runtime.component import (
    Context,
    Controller,
    Publishable,
    required_callbacks,
)
from repro.runtime.clock import SimulationClock


class TestPublishable:
    def test_wraps_value(self):
        wrapped = Publishable([1, 2])
        assert wrapped.value == [1, 2]
        assert "Publishable" in repr(wrapped)


class TestComponentBinding:
    def test_unbound_defaults(self):
        context = Context()
        assert context.name is None
        assert context.discover is None
        assert context.now() == 0.0

    def test_bind_sets_everything(self):
        clock = SimulationClock(start=42.0)
        context = Context()
        context.bind("Alert", discover="fake-discover", clock=clock)
        assert context.name == "Alert"
        assert context.discover == "fake-discover"
        assert context.now() == 42.0

    def test_default_when_required_raises(self):
        with pytest.raises(RuntimeOrchestrationError, match="when_required"):
            Context().when_required(None)


class TestHandlerLookup:
    def test_long_name_preferred_over_short(self):
        calls = []

        class C(Context):
            def on_reading_from_sensor(self, event, discover):
                calls.append("long")

            def on_reading(self, event, discover):
                calls.append("short")

        handler = C().find_event_handler("reading", "Sensor")
        handler(None, None)
        assert calls == ["long"]

    def test_short_name_fallback(self):
        class C(Context):
            def on_reading(self, event, discover):
                return 1

        assert C().find_event_handler("reading", "Sensor") is not None

    def test_missing_handler_is_none(self):
        assert Context().find_event_handler("x", "Y") is None
        assert Context().find_periodic_handler("x", "Y") is None
        assert Context().find_context_handler("X") is None
        assert Controller().find_context_handler("X") is None


class TestRequiredCallbacks:
    def test_context_callbacks(self):
        (decl,) = parse(
            "context C as Float {\n"
            "when provided s from D always publish;\n"
            "when periodic t from E <1 s> grouped by a "
            "with map as Float reduce as Float always publish;\n"
            "when provided Other always publish;\n"
            "when required;\n"
            "}"
        ).contexts
        names = required_callbacks(decl)
        assert "on_s_from_d" in names
        assert "on_periodic_t_from_e" in names
        assert "map" in names and "reduce" in names
        assert "on_other" in names
        assert "when_required" in names

    def test_controller_callbacks(self):
        (decl,) = parse(
            "controller K { when provided A do x on D; "
            "when provided B do y on E; }"
        ).controllers
        assert required_callbacks(decl) == ["on_a", "on_b"]
