"""Incremental (streaming) window accumulation vs buffered windows.

The fast path keeps one partial aggregate per group and must publish the
same values as buffering the whole window, for associative jobs — the
equivalence the paper's 24-hour parking window relies on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.api import MapReduce
from repro.runtime.app import Application
from repro.runtime.config import RuntimeConfig
from repro.runtime.component import Context
from repro.runtime.device import CallableDriver
from repro.runtime.grouping import WindowAccumulator, fold_for_job
from repro.sema.analyzer import analyze


class SumJob(MapReduce):
    def map(self, key, value, collector):
        collector.emit_map(key, value)

    def reduce(self, key, values, collector):
        collector.emit_reduce(key, sum(values))


class CombineSumJob(SumJob):
    def combine(self, key, values, collector):
        collector.emit_combine(key, sum(values))


class MaxJob(MapReduce):
    def reduce(self, key, values, collector):
        collector.emit_reduce(key, max(values))


class TestFoldForJob:
    def test_fold_uses_reduce_when_no_combiner(self):
        fold = fold_for_job(SumJob())
        assert fold("k", 3, 4) == 7

    def test_fold_prefers_combine(self):
        class Tagged(SumJob):
            def combine(self, key, values, collector):
                collector.emit_combine(key, ("combined", sum(values)))

        fold = fold_for_job(Tagged())
        assert fold("k", 1, 2) == ("combined", 3)

    def test_fold_rejects_multi_emission(self):
        class Chatty(MapReduce):
            def reduce(self, key, values, collector):
                for value in values:
                    collector.emit_reduce(key, value)

        fold = fold_for_job(Chatty())
        with pytest.raises(ValueError, match="exactly one"):
            fold("k", 1, 2)


class TestIncrementalAccumulator:
    def test_incremental_folds_per_delivery(self):
        acc = WindowAccumulator(3, flatten=False, fold=fold_for_job(SumJob()))
        assert acc.add({"A": 1}) is None
        assert acc.add({"A": 2, "B": 10}) is None
        assert acc.add({"A": 4}) == {"A": 7, "B": 10}

    def test_incremental_state_is_one_partial_per_group(self):
        acc = WindowAccumulator.incremental_for_job(
            600.0, 86400.0, CombineSumJob()
        )
        assert acc.deliveries_per_window == 144
        for __ in range(100):
            acc.add({"A": 1, "B": 2})
        assert acc.peak_buffered_values == 2  # two groups, ever
        assert acc.stats()["mode"] == "incremental"

    def test_buffered_state_grows_with_deliveries(self):
        acc = WindowAccumulator(144, flatten=False)
        for __ in range(100):
            acc.add({"A": 1, "B": 2})
        assert acc.peak_buffered_values == 200
        assert acc.stats()["mode"] == "buffered"

    def test_incremental_resets_between_windows(self):
        acc = WindowAccumulator(2, flatten=False, fold=fold_for_job(SumJob()))
        acc.add({"A": 1})
        assert acc.add({"A": 2}) == {"A": 3}
        acc.add({"A": 5})
        assert acc.add({"A": 6}) == {"A": 11}

    def test_incremental_flatten_folds_each_value(self):
        acc = WindowAccumulator(
            2, flatten=True, fold=fold_for_job(SumJob())
        )
        acc.add({"A": [1, 2, 3]})
        assert acc.add({"A": [4]}) == {"A": 10}


# Deliveries: per-sweep reduced values, one int per group per delivery.
delivery_lists = st.lists(
    st.dictionaries(
        st.sampled_from("ABC"),
        st.integers(min_value=-100, max_value=100),
        max_size=3,
    ),
    min_size=1,
    max_size=12,
)


@given(delivery_lists, st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_incremental_equals_buffered_for_associative_jobs(
    deliveries, per_window
):
    """Folding as values arrive == reducing the buffered window at once."""
    for job in (SumJob(), CombineSumJob(), MaxJob()):
        buffered = WindowAccumulator(per_window, flatten=False)
        incremental = WindowAccumulator(
            per_window, flatten=False, fold=fold_for_job(job)
        )
        for delivery in deliveries:
            buffered_window = buffered.add(delivery)
            incremental_window = incremental.add(delivery)
            assert (buffered_window is None) == (incremental_window is None)
            if buffered_window is None:
                continue
            reduced_buffered = {
                key: fold_reduce(job, key, values)
                for key, values in buffered_window.items()
            }
            assert incremental_window == reduced_buffered


def fold_reduce(job, key, values):
    from repro.mapreduce.api import ReduceCollector

    collector = ReduceCollector()
    job.reduce(key, values, collector)
    return collector.pairs[0][1]


# ---------------------------------------------------------------------------
# Application-level: the streaming path is the default for `every` +
# MapReduce contexts and publishes identical values to buffered mode.
# ---------------------------------------------------------------------------

WINDOWED_DESIGN = """\
device PresenceSensor {
    attribute parkingLot as LotEnum;
    source presence as Boolean;
}
enumeration LotEnum { A22, B16 }

context DailyFree as Integer {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot every <30 min>
    with map as Integer reduce as Integer
    always publish;
}
"""


class DailyFreeImpl(Context, MapReduce):
    """Counts free spaces; window handler tolerates both payload shapes."""

    def __init__(self):
        super().__init__()
        self.windows = []

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, 1)

    def combine(self, lot, counts, collector):
        collector.emit_combine(lot, sum(counts))

    def reduce(self, lot, counts, collector):
        collector.emit_reduce(lot, sum(counts))

    def on_periodic_presence(self, free_by_lot, discover):
        totals = {
            lot: (sum(value) if isinstance(value, list) else value)
            for lot, value in free_by_lot.items()
        }
        self.windows.append(totals)
        return sum(totals.values())


def build_windowed(streaming):
    app = Application(
        analyze(WINDOWED_DESIGN),
        RuntimeConfig(streaming_windows=streaming),
    )
    impl = app.implement("DailyFree", DailyFreeImpl())
    published = []
    app.bus.subscribe(
        ("context", "DailyFree"), lambda event: published.append(event.value)
    )
    for lot, count in [("A22", 3), ("B16", 2)]:
        for index in range(count):
            occupied = index == 0
            app.create_device(
                "PresenceSensor",
                f"{lot}-{index}",
                CallableDriver(
                    sources={"presence": (lambda o=occupied: o)}
                ),
                parkingLot=lot,
            )
    app.start()
    return app, impl, published


class TestStreamingWindowApplication:
    def test_streaming_is_default_and_matches_buffered(self):
        streaming_app, streaming_impl, streaming_published = build_windowed(
            True
        )
        buffered_app, buffered_impl, buffered_published = build_windowed(
            False
        )
        # Two 30-minute windows of 3 sweeps each.
        streaming_app.advance(3600)
        buffered_app.advance(3600)
        assert streaming_published == buffered_published
        assert streaming_impl.windows == buffered_impl.windows
        # 2 free in A22 + 1 free in B16, times 3 sweeps per window.
        assert streaming_published == [9, 9]

    def test_streaming_window_state_is_constant_in_sweeps(self):
        streaming_app, __, ___ = build_windowed(True)
        buffered_app, __, ___ = build_windowed(False)
        streaming_app.advance(3600)
        buffered_app.advance(3600)
        streaming = streaming_app.stats["windows"]["DailyFree"]
        buffered = buffered_app.stats["windows"]["DailyFree"]
        assert streaming["mode"] == "incremental"
        assert buffered["mode"] == "buffered"
        assert streaming["peak_buffered_values"] == 2  # one per lot
        assert buffered["peak_buffered_values"] == 6  # lots x sweeps

    def test_non_mapreduce_window_stays_buffered(self):
        design = """\
device S { attribute zone as Z; source x as Float; }
enumeration Z { A }
context W as Float {
    when periodic x from S <10 min>
    grouped by zone every <20 min>
    always publish;
}
"""

        class WImpl(Context):
            def on_periodic_x(self, by_zone, discover):
                values = [v for vs in by_zone.values() for v in vs]
                return sum(values) / len(values)

        app = Application(analyze(design))
        app.implement("W", WImpl())
        app.create_device(
            "S", "s1", CallableDriver(sources={"x": lambda: 2.0}), zone="A"
        )
        app.start()
        app.advance(1200)
        assert app.stats["windows"]["W"]["mode"] == "buffered"
