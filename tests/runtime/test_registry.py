"""Entity registry: registration, type/attribute queries, listeners."""

import pytest

from repro.errors import BindingError
from repro.runtime.device import CallableDriver, DeviceInstance
from repro.runtime.registry import EntityRegistry
from repro.sema.analyzer import analyze

DESIGN = """\
device DisplayPanel { action update(status as String); }
device ParkingEntrancePanel extends DisplayPanel {
    attribute location as LotEnum;
}
device PresenceSensor {
    attribute parkingLot as LotEnum;
    source presence as Boolean;
}
enumeration LotEnum { A22, B16 }
"""


@pytest.fixture
def design():
    return analyze(DESIGN)


@pytest.fixture
def registry():
    return EntityRegistry()


def panel(design, entity_id, lot):
    return DeviceInstance(
        design.devices["ParkingEntrancePanel"],
        entity_id,
        CallableDriver(actions={"update": lambda status: None}),
        {"location": lot},
    )


def sensor(design, entity_id, lot, value=False):
    return DeviceInstance(
        design.devices["PresenceSensor"],
        entity_id,
        CallableDriver(sources={"presence": lambda: value}),
        {"parkingLot": lot},
    )


class TestRegistration:
    def test_register_and_get(self, design, registry):
        instance = registry.register(sensor(design, "s1", "A22"))
        assert registry.get("s1") is instance
        assert len(registry) == 1

    def test_duplicate_id_rejected(self, design, registry):
        registry.register(sensor(design, "s1", "A22"))
        with pytest.raises(BindingError, match="already"):
            registry.register(sensor(design, "s1", "B16"))

    def test_unregister(self, design, registry):
        registry.register(sensor(design, "s1", "A22"))
        registry.unregister("s1")
        assert len(registry) == 0
        assert registry.instances_of("PresenceSensor") == []

    def test_unregister_unknown(self, registry):
        with pytest.raises(BindingError):
            registry.unregister("ghost")

    def test_get_unknown(self, registry):
        with pytest.raises(BindingError):
            registry.get("ghost")

    def test_entity_ids_sorted(self, design, registry):
        registry.register(sensor(design, "s2", "A22"))
        registry.register(sensor(design, "s1", "A22"))
        assert registry.entity_ids() == ["s1", "s2"]

    def test_clear(self, design, registry):
        registry.register(sensor(design, "s1", "A22"))
        registry.register(sensor(design, "s2", "B16"))
        registry.clear()
        assert len(registry) == 0


class TestTypeQueries:
    def test_instances_of_exact_type(self, design, registry):
        registry.register(sensor(design, "s1", "A22"))
        assert len(registry.instances_of("PresenceSensor")) == 1

    def test_subtype_matches_supertype_query(self, design, registry):
        registry.register(panel(design, "p1", "A22"))
        assert len(registry.instances_of("DisplayPanel")) == 1
        assert len(registry.instances_of("ParkingEntrancePanel")) == 1

    def test_supertype_does_not_match_subtype_query(self, design, registry):
        base = DeviceInstance(
            design.devices["DisplayPanel"],
            "p0",
            CallableDriver(actions={"update": lambda status: None}),
        )
        registry.register(base)
        assert registry.instances_of("ParkingEntrancePanel") == []

    def test_attribute_filter(self, design, registry):
        registry.register(panel(design, "p1", "A22"))
        registry.register(panel(design, "p2", "B16"))
        matches = registry.instances_of(
            "ParkingEntrancePanel", location="B16"
        )
        assert [m.entity_id for m in matches] == ["p2"]

    def test_failed_devices_hidden_by_default(self, design, registry):
        instance = registry.register(sensor(design, "s1", "A22"))
        instance.fail()
        assert registry.instances_of("PresenceSensor") == []
        assert (
            len(registry.instances_of("PresenceSensor", include_failed=True))
            == 1
        )

    def test_unregister_removes_from_supertype_index(self, design, registry):
        registry.register(panel(design, "p1", "A22"))
        registry.unregister("p1")
        assert registry.instances_of("DisplayPanel") == []


class TestUnhashableAttributes:
    """`_index_key` skips unhashable values; discovery must still work
    through the linear type-bucket fallback (regression)."""

    DESIGN = """\
device Tagged {
    attribute tags as String[];
    source x as Float;
}
"""

    @pytest.fixture
    def tagged_design(self):
        return analyze(self.DESIGN)

    def tagged(self, design, entity_id, tags):
        return DeviceInstance(
            design.devices["Tagged"],
            entity_id,
            CallableDriver(sources={"x": lambda: 1.0}),
            {"tags": tags},
        )

    def test_registration_skips_unhashable_index(self, tagged_design):
        registry = EntityRegistry()
        registry.register(self.tagged(tagged_design, "t1", ["a", "b"]))
        assert len(registry) == 1

    def test_discoverable_without_filters(self, tagged_design):
        registry = EntityRegistry()
        registry.register(self.tagged(tagged_design, "t1", ["a", "b"]))
        assert [
            i.entity_id for i in registry.instances_of("Tagged")
        ] == ["t1"]

    def test_unhashable_filter_uses_linear_fallback(self, tagged_design):
        registry = EntityRegistry()
        registry.register(self.tagged(tagged_design, "t1", ["a", "b"]))
        registry.register(self.tagged(tagged_design, "t2", ["c"]))
        matches = registry.instances_of("Tagged", tags=["a", "b"])
        assert [i.entity_id for i in matches] == ["t1"]
        assert registry.instances_of("Tagged", tags=["zzz"]) == []

    def test_unregister_with_unhashable_attributes(self, tagged_design):
        registry = EntityRegistry()
        registry.register(self.tagged(tagged_design, "t1", ["a"]))
        registry.unregister("t1")
        assert registry.instances_of("Tagged") == []


class TestListeners:
    def test_register_event(self, design, registry):
        events = []
        registry.add_listener(lambda kind, inst: events.append((kind,
                                                                inst.entity_id)))
        registry.register(sensor(design, "s1", "A22"))
        registry.unregister("s1")
        assert events == [("register", "s1"), ("unregister", "s1")]

    def test_listener_removal(self, design, registry):
        events = []
        remove = registry.add_listener(lambda *a: events.append(a))
        remove()
        registry.register(sensor(design, "s1", "A22"))
        assert events == []
        remove()  # second removal is a no-op


class TestHashShards:
    """iter_shards(shards=N): the hash-partitioning mode behind the
    process-sharded runtime."""

    def test_exactly_n_shards_in_fixed_order(self, design, registry):
        for index in range(10):
            registry.register(sensor(design, f"s-{index}", "A22"))
        shards = registry.iter_shards("PresenceSensor", shards=3)
        assert [key for key, __ in shards] == ["hash:0", "hash:1", "hash:2"]
        members = [pair for __, bucket in shards for pair in bucket]
        assert sorted(p for p, __ in members) == list(range(10))

    def test_surplus_shards_are_present_and_empty(self, design, registry):
        registry.register(sensor(design, "only", "A22"))
        shards = registry.iter_shards("PresenceSensor", shards=5)
        assert [key for key, __ in shards] == [
            f"hash:{index}" for index in range(5)
        ]
        assert sum(len(bucket) for __, bucket in shards) == 1
        # Empty fleets still yield every shard, deterministically.
        empty = EntityRegistry().iter_shards("PresenceSensor", shards=3)
        assert empty == [("hash:0", []), ("hash:1", []), ("hash:2", [])]

    def test_assignment_ignores_other_entities(self, design, registry):
        from repro.mapreduce.partition import shard_index

        for index in range(8):
            registry.register(sensor(design, f"s-{index}", "A22"))
        shards = dict(registry.iter_shards("PresenceSensor", shards=4))
        for key, bucket in shards.items():
            for __, instance in bucket:
                assert (
                    f"hash:{shard_index(instance.entity_id, 4)}" == key
                )

    def test_mode_exclusivity_and_validation(self, design, registry):
        registry.register(sensor(design, "s-0", "A22"))
        with pytest.raises(ValueError, match="not both"):
            registry.iter_shards(
                "PresenceSensor", attribute="parkingLot", shards=2
            )
        with pytest.raises(ValueError, match=">= 1"):
            registry.iter_shards("PresenceSensor", shards=0)
