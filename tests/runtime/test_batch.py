"""Columnar batch reads: equivalence, demotion, metrics, cache interplay.

The load-bearing invariant is that ``BatchConfig(enabled=True)`` changes
*how fast* sweeps read, never *what* they deliver: for any fleet size,
cohort threshold and sweep mode, the grouped payloads and window
closures are identical to the scalar run — the hypothesis property here
holds the whole gather pipeline to it.  A second family of tests pins
the demotion contract: entities that cannot batch (failed, quarantined,
unsupported drivers, undersized cohorts) fall back to the scalar path
with full supervision accounting, without poisoning the columns of
their healthy neighbours.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Application,
    BatchConfig,
    CacheConfig,
    CallableDriver,
    Context,
    RuntimeConfig,
    SupervisionPolicy,
    SweepConfig,
    analyze,
)
from repro.faults.policy import QUARANTINED
from repro.runtime.grouping import WindowAccumulator, column_fold_for_job
from repro.simulation.sensors import FleetSubstrate, SubstrateDriver

DESIGN = """\
device PresenceSensor {
    attribute parkingLot as LotEnum;
    source presence as Boolean;
}
enumeration LotEnum { A22, B16, D6 }

context FreeCount as Integer {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot
    with map as Boolean reduce as Integer
    always publish;
}

context Windowed as Integer {
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot every <30 min>
    always publish;
}
"""

LOTS = ("A22", "B16", "D6")
PERIOD = 600.0


class FreeCountImpl(Context):
    def __init__(self):
        super().__init__()
        self.deliveries = []

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, True)

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, len(values))

    def on_periodic_presence(self, by_lot, discover):
        self.deliveries.append(dict(by_lot))
        return sum(by_lot.values())


class WindowedImpl(Context):
    def __init__(self):
        super().__init__()
        self.windows = []

    def on_periodic_presence(self, window_by_lot, discover):
        self.windows.append(
            {lot: list(values) for lot, values in window_by_lot.items()}
        )
        return sum(len(v) for v in window_by_lot.values())


def build_app(batch=None, sensors=6, seed=7, **config_kwargs):
    """A grouped + windowed periodic app over one shared substrate.

    Sensors register round-robin across lots so shards interleave in
    registration order, and every driver shares one
    :class:`FleetSubstrate` — the batch-eligible shape.
    """
    config = RuntimeConfig(
        batch=batch if batch is not None else BatchConfig(),
        **config_kwargs,
    )
    app = Application(analyze(DESIGN), config)
    free = app.implement("FreeCount", FreeCountImpl())
    windowed = app.implement("Windowed", WindowedImpl())
    substrate = FleetSubstrate(
        app.clock, seed=seed, models={"presence": lambda draw: draw < 0.5}
    )
    for index in range(sensors):
        app.create_device(
            "PresenceSensor",
            f"s-{index}",
            substrate.driver("presence"),
            parkingLot=LOTS[index % len(LOTS)],
        )
    app.start()
    return app, free, windowed, substrate


class TestBatchConfig:
    def test_defaults_are_off(self):
        config = BatchConfig()
        assert config.enabled is False
        assert config.columnar_reads is True
        assert config.compile_plans is True
        assert config.min_column == 2

    def test_min_column_validated(self):
        with pytest.raises(ValueError):
            BatchConfig(min_column=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            BatchConfig().enabled = True

    def test_runtime_config_validates_type(self):
        with pytest.raises(TypeError):
            RuntimeConfig(batch=object())


class TestBatchEquivalence:
    """batch on == batch off, payload for payload."""

    @settings(max_examples=12, deadline=None)
    @given(
        sensors=st.integers(min_value=1, max_value=12),
        min_column=st.integers(min_value=1, max_value=4),
        mode=st.sampled_from(["serial", "threaded"]),
        periods=st.integers(min_value=1, max_value=4),
    )
    def test_payloads_and_windows_identical(
        self, sensors, min_column, mode, periods
    ):
        sweep = SweepConfig(mode=mode, workers=3)
        baseline, base_free, base_windowed, __ = build_app(
            batch=BatchConfig(enabled=False),
            sensors=sensors,
            sweep=sweep,
        )
        batched, batch_free, batch_windowed, __ = build_app(
            batch=BatchConfig(enabled=True, min_column=min_column),
            sensors=sensors,
            sweep=sweep,
        )
        baseline.advance(PERIOD * periods)
        batched.advance(PERIOD * periods)
        assert batch_free.deliveries == base_free.deliveries
        assert batch_windowed.windows == base_windowed.windows

    def test_batch_reads_actually_happen(self):
        app, free, __, substrate = build_app(
            batch=BatchConfig(enabled=True), sensors=9
        )
        app.advance(PERIOD)
        stats = app.sweeper.stats()
        assert stats["columnar_sweeps"] >= 1
        assert stats["batch_reads"] >= 1
        assert substrate.batch_reads >= 1
        # Two sweeps per period (FreeCount + Windowed); the second one
        # rides the first one's tick memo, but both go columnar.
        assert free.deliveries

    def test_disabled_batch_never_touches_read_batch(self):
        app, __, __, substrate = build_app(
            batch=BatchConfig(enabled=False), sensors=6
        )
        app.advance(PERIOD)
        assert substrate.batch_reads == 0
        assert app.sweeper.stats()["columnar_sweeps"] == 0
        assert substrate.scalar_reads > 0


class TestDemotion:
    def test_small_cohorts_demote_to_scalar(self):
        app, free, __, substrate = build_app(
            batch=BatchConfig(enabled=True, min_column=10), sensors=6
        )
        app.advance(PERIOD)
        # Shards of 2 sensors never reach min_column=10: all scalar.
        assert substrate.batch_reads == 0
        assert app.sweeper.stats()["batch_demoted"] > 0
        assert free.deliveries

    def test_driver_without_batch_support_demotes(self):
        config = RuntimeConfig(batch=BatchConfig(enabled=True))
        app = Application(analyze(DESIGN), config)
        free = app.implement("FreeCount", FreeCountImpl())
        app.implement("Windowed", WindowedImpl())
        for index in range(4):
            app.create_device(
                "PresenceSensor",
                f"s-{index}",
                CallableDriver(sources={"presence": lambda: True}),
                parkingLot=LOTS[index % len(LOTS)],
            )
        app.start()
        app.advance(PERIOD)
        stats = app.sweeper.stats()
        assert stats["batch_reads"] == 0
        assert stats["batch_demoted"] > 0
        assert free.deliveries and free.deliveries[0] == {}

    def test_failed_device_demotes_without_poisoning_column(self):
        kwargs = dict(sensors=6, stale=None)
        baseline, base_free, __, __ = build_app(
            batch=BatchConfig(enabled=False), **kwargs
        )
        batched, batch_free, __, __ = build_app(
            batch=BatchConfig(enabled=True), **kwargs
        )
        for app in (baseline, batched):
            app.registry.get("s-0").fail()
        baseline.advance(PERIOD)
        batched.advance(PERIOD)
        # The failed entity drops out of both runs the same way (the
        # registry hides hard-failed instances from sweeps), and its
        # shard-mate — now a cohort of one — demotes to scalar without
        # touching the other shards' columns.
        assert batch_free.deliveries == base_free.deliveries
        assert batched.sweeper.stats()["batch_demoted"] >= 1
        assert batched.stats["gather_read_failed"] == 0

    def test_quarantined_device_demotes_to_scalar_breaker_path(self):
        policy = SupervisionPolicy(
            failure_threshold=1, quarantine_after=1, jitter=0.0
        )
        kwargs = dict(sensors=6, supervision=policy)
        baseline, base_free, __, __ = build_app(
            batch=BatchConfig(enabled=False), **kwargs
        )
        batched, batch_free, __, batch_substrate = build_app(
            batch=BatchConfig(enabled=True), **kwargs
        )
        for app in (baseline, batched):
            supervisor = app.registry.get("s-0").supervisor
            supervisor.record_failure()
            assert supervisor.health == QUARANTINED
        baseline.advance(PERIOD)
        batched.advance(PERIOD)
        # The quarantined entity goes through the scalar path (where
        # the open breaker refuses the read — its half-open recovery
        # machinery stays in charge); its neighbours' columns match the
        # scalar run exactly.
        assert batch_free.deliveries == base_free.deliveries
        assert batched.sweeper.stats()["batch_demoted"] >= 1
        assert batch_substrate.batch_reads >= 1


class TestCacheInterplay:
    def test_fresh_cache_entries_skip_the_batch(self):
        app, free, __, substrate = build_app(
            batch=BatchConfig(enabled=True),
            sensors=6,
            cache=CacheConfig(enabled=True, ttl_seconds=3600.0),
        )
        app.advance(PERIOD)
        first_batches = substrate.batch_reads
        assert first_batches >= 1
        hits_before = app.read_cache.stats()["hits"]
        app.advance(PERIOD)
        # Second period: every entity is cache-fresh, so no new batch
        # reads are issued and the sweep is served as cache hits.
        assert substrate.batch_reads == first_batches
        assert app.read_cache.stats()["hits"] >= hits_before + 6
        assert len(free.deliveries) >= 1

    def test_batch_columns_populate_the_cache(self):
        app, __, __, substrate = build_app(
            batch=BatchConfig(enabled=True),
            sensors=6,
            cache=CacheConfig(enabled=True, ttl_seconds=3600.0),
        )
        app.advance(PERIOD)
        cache_stats = app.read_cache.stats()
        assert cache_stats["entries"] == 6
        # Each batched slot counted as a miss (the driver really ran).
        assert cache_stats["misses"] >= 6


class TestColumnarWindows:
    class SumJob:
        def map(self, key, value, collector):
            collector.emit_map(key, value)

        def reduce(self, key, values, collector):
            collector.emit_reduce(key, sum(values))

    def test_columnar_fold_matches_pairwise(self):
        job = self.SumJob()
        pairwise = WindowAccumulator.incremental_for_job(
            1.0, 3.0, job, flatten=True, columnar=False
        )
        columnar = WindowAccumulator.incremental_for_job(
            1.0, 3.0, job, flatten=True, columnar=True
        )
        assert columnar.fold_column is not None
        deliveries = [
            {"a": [1, 2, 3], "b": [10]},
            {"a": [4], "b": []},
            {"a": [5, 6], "b": [20, 30]},
        ]
        out_pair = [pairwise.add(d) for d in deliveries]
        out_col = [columnar.add(d) for d in deliveries]
        assert out_pair == out_col
        assert out_col[-1] == {"a": 21, "b": 60}

    def test_column_fold_for_job_single_value_shortcut(self):
        fold = column_fold_for_job(self.SumJob())
        assert fold("k", [42]) == 42
        assert fold("k", [1, 2, 3]) == 6

    def test_fold_column_requires_fold(self):
        with pytest.raises(ValueError):
            WindowAccumulator(2, True, fold=None, fold_column=lambda k, v: v)


class TestSubstrate:
    def test_scalar_and_column_agree(self):
        from repro.runtime.clock import SimulationClock

        clock = SimulationClock()
        substrate = FleetSubstrate(clock, seed=3)
        ids = [f"e-{i}" for i in range(8)]
        column = substrate.read_column("presence", ids)
        assert [substrate.value("presence", i) for i in ids] == column
        clock.advance(10.0)
        assert substrate.read_column("presence", ids) != column or True
        # Deterministic across substrates with the same seed and time.
        other = FleetSubstrate(SimulationClock(), seed=3)
        assert other.read_column("presence", ids) == column

    def test_driver_restricts_sources(self):
        from repro.errors import DeliveryError
        from repro.runtime.clock import SimulationClock

        substrate = FleetSubstrate(SimulationClock(), seed=1)
        driver = substrate.driver("presence")
        assert driver.batch_key("presence") is substrate
        assert driver.batch_key("other") is None
        with pytest.raises(DeliveryError):
            driver.read_batch(["x"], "other")

    def test_plain_driver_has_no_batch_key(self):
        driver = CallableDriver(sources={"presence": lambda: True})
        assert driver.batch_key("presence") is None
        assert driver.read_batch(["x"], "presence") is NotImplemented

    def test_substrate_driver_subclass_is_its_own_cohort(self):
        class GatewayDriver(SubstrateDriver):
            pass

        from repro.runtime.clock import SimulationClock

        substrate = FleetSubstrate(SimulationClock(), seed=1)
        a, b = substrate.driver(), GatewayDriver(substrate)
        assert a.batch_key("presence") is b.batch_key("presence")
