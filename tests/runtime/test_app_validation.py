"""Start-up validation: missing implementations, wrong base classes,
missing callbacks, MapReduce conformance."""

import pytest

from repro.errors import BindingError
from repro.runtime.app import Application
from repro.runtime.component import Context, Controller
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor {
    attribute zone as ZoneEnum;
    source reading as Float;
}
device Siren { action sound(level as Integer); }
enumeration ZoneEnum { NORTH }

context Grouped as Float {
    when periodic reading from Sensor <1 min>
    grouped by zone
    with map as Float reduce as Float
    always publish;
}

context Queryable as Float {
    when required;
}

controller K {
    when provided Grouped
    do sound on Siren;
}
"""


class GoodGrouped(Context):
    def map(self, key, value, collector):
        collector.emit_map(key, value)

    def reduce(self, key, values, collector):
        collector.emit_reduce(key, sum(values))

    def on_periodic_reading(self, by_zone, discover):
        return sum(by_zone.values())


class GoodQueryable(Context):
    def when_required(self, discover):
        return 1.0


class GoodController(Controller):
    def on_grouped(self, value, discover):
        pass


def app_with(**overrides):
    app = Application(analyze(DESIGN))
    implementations = {
        "Grouped": GoodGrouped(),
        "Queryable": GoodQueryable(),
        "K": GoodController(),
    }
    implementations.update(overrides)
    for name, impl in implementations.items():
        if impl is not None:
            app.implement(name, impl)
    return app


class TestMissingPieces:
    def test_missing_context_impl(self):
        app = app_with(Grouped=None)
        with pytest.raises(BindingError, match="Grouped.*no implementation"):
            app.start()

    def test_missing_controller_impl(self):
        app = app_with(K=None)
        with pytest.raises(BindingError, match="'K' has no implementation"):
            app.start()

    def test_missing_periodic_callback(self):
        class NoCallback(Context):
            def map(self, k, v, c):
                pass

            def reduce(self, k, vs, c):
                pass

        app = app_with(Grouped=NoCallback())
        with pytest.raises(BindingError, match="on_periodic_reading"):
            app.start()

    def test_missing_mapreduce_methods(self):
        class NoMapReduce(Context):
            def on_periodic_reading(self, by_zone, discover):
                return 0.0

        app = app_with(Grouped=NoMapReduce())
        with pytest.raises(BindingError, match="MapReduce"):
            app.start()

    def test_missing_when_required(self):
        class NotQueryable(Context):
            pass

        app = app_with(Queryable=NotQueryable())
        with pytest.raises(BindingError, match="when_required"):
            app.start()

    def test_missing_controller_callback(self):
        class Deaf(Controller):
            pass

        app = app_with(K=Deaf())
        with pytest.raises(BindingError, match="on_grouped"):
            app.start()


class TestKindMismatches:
    def test_context_impl_must_subclass_context(self):
        app = Application(analyze(DESIGN))
        with pytest.raises(BindingError, match="subclass Context"):
            app.implement("Grouped", GoodController())

    def test_controller_impl_must_subclass_controller(self):
        app = Application(analyze(DESIGN))
        with pytest.raises(BindingError, match="subclass Controller"):
            app.implement("K", GoodQueryable())

    def test_unknown_component_name(self):
        app = Application(analyze(DESIGN))
        with pytest.raises(BindingError, match="not a context"):
            app.implement("Ghost", GoodQueryable())

    def test_implement_accepts_class_and_instantiates(self):
        app = Application(analyze(DESIGN))
        impl = app.implement("Queryable", GoodQueryable)
        assert isinstance(impl, GoodQueryable)

    def test_implement_after_start_rejected(self):
        app = app_with()
        app.start()
        with pytest.raises(BindingError, match="before start"):
            app.implement("Queryable", GoodQueryable())


class TestDeviceBinding:
    def test_unknown_device_type_rejected(self):
        app = app_with()
        with pytest.raises(BindingError, match="not part of this design"):
            app.create_device("Toaster", "t1", CallableDriver())

    def test_unbind_device(self):
        app = app_with()
        app.create_device(
            "Sensor", "s1",
            CallableDriver(sources={"reading": lambda: 1.0}), zone="NORTH",
        )
        app.unbind_device("s1")
        assert len(app.registry) == 0

    def test_implementation_lookup(self):
        app = app_with()
        assert isinstance(app.implementation("Grouped"), GoodGrouped)
        with pytest.raises(BindingError):
            app.implementation("Ghost")
