"""Device instances, drivers and the three delivery modes."""

import pytest

from repro.errors import (
    ActuationError,
    BindingError,
    DeliveryError,
    ValueConformanceError,
)
from repro.runtime.device import CallableDriver, DeviceDriver, DeviceInstance
from repro.sema.analyzer import analyze

DESIGN = """\
device PresenceSensor {
    attribute parkingLot as LotEnum;
    source presence as Boolean;
}
device Prompter {
    source answer as String indexed by questionId as String;
    action askQuestion(question as String);
}
device Cooker {
    source consumption as Float;
    action Off;
}
enumeration LotEnum { A22, B16 }
"""


@pytest.fixture
def design():
    return analyze(DESIGN)


def sensor(design, value=True, **attrs):
    attrs = attrs or {"parkingLot": "A22"}
    return DeviceInstance(
        design.devices["PresenceSensor"],
        "s1",
        CallableDriver(sources={"presence": lambda: value}),
        attrs,
    )


class TestAttributeRegistration:
    def test_attributes_required(self, design):
        with pytest.raises(BindingError, match="must be set"):
            DeviceInstance(
                design.devices["PresenceSensor"], "s1", CallableDriver(), {}
            )

    def test_unknown_attribute_rejected(self, design):
        with pytest.raises(BindingError, match="unknown"):
            DeviceInstance(
                design.devices["PresenceSensor"],
                "s1",
                CallableDriver(),
                {"parkingLot": "A22", "floor": 2},
            )

    def test_attribute_value_type_checked(self, design):
        with pytest.raises(ValueConformanceError):
            sensor(design, parkingLot="Z99")

    def test_device_without_attributes(self, design):
        DeviceInstance(
            design.devices["Cooker"],
            "c1",
            CallableDriver(sources={"consumption": lambda: 0.0}),
        )


class TestQueryDelivery:
    def test_read_returns_driver_value(self, design):
        assert sensor(design, value=True).read("presence") is True

    def test_read_checks_type(self, design):
        bad = DeviceInstance(
            design.devices["PresenceSensor"],
            "s1",
            CallableDriver(sources={"presence": lambda: "yes"}),
            {"parkingLot": "A22"},
        )
        with pytest.raises(ValueConformanceError):
            bad.read("presence")

    def test_read_widens_int_to_float(self, design):
        cooker = DeviceInstance(
            design.devices["Cooker"],
            "c1",
            CallableDriver(sources={"consumption": lambda: 1500}),
        )
        value = cooker.read("consumption")
        assert value == 1500.0 and isinstance(value, float)

    def test_read_unknown_source(self, design):
        with pytest.raises(Exception):
            sensor(design).read("humidity")


class TestEventDelivery:
    def test_publish_reaches_hook(self, design):
        instance = sensor(design)
        got = []
        instance.attach(lambda *args: got.append(args))
        instance.publish("presence", False)
        ((published_instance, source, value, index),) = got
        assert published_instance is instance
        assert (source, value, index) == ("presence", False, None)

    def test_publish_without_hook_is_silent(self, design):
        sensor(design).publish("presence", True)

    def test_publish_type_checked(self, design):
        instance = sensor(design)
        with pytest.raises(ValueConformanceError):
            instance.publish("presence", "maybe")

    def test_indexed_publish_checks_index_type(self, design):
        prompter = DeviceInstance(
            design.devices["Prompter"], "p1", CallableDriver()
        )
        with pytest.raises(ValueConformanceError):
            prompter.publish("answer", "yes", index=42)

    def test_driver_push_helper(self, design):
        class Driver(DeviceDriver):
            def trigger(self):
                self.push("presence", True)

        driver = Driver()
        instance = DeviceInstance(
            design.devices["PresenceSensor"], "s1", driver,
            {"parkingLot": "A22"},
        )
        got = []
        instance.attach(lambda *args: got.append(args))
        driver.trigger()
        assert len(got) == 1

    def test_unbound_driver_push_rejected(self):
        with pytest.raises(DeliveryError, match="not bound"):
            DeviceDriver().push("x", 1)


class TestActuation:
    def test_action_dispatch(self, design):
        asked = []
        prompter = DeviceInstance(
            design.devices["Prompter"],
            "p1",
            CallableDriver(
                actions={"askQuestion": lambda question: asked.append(question)}
            ),
        )
        # CallableDriver receives raw DiaSpec parameter names.
        prompter.act("askQuestion", question="hello?")
        assert asked == ["hello?"]

    def test_missing_parameter_rejected(self, design):
        prompter = DeviceInstance(
            design.devices["Prompter"], "p1", CallableDriver()
        )
        with pytest.raises(ActuationError, match="expects parameters"):
            prompter.act("askQuestion")

    def test_extra_parameter_rejected(self, design):
        prompter = DeviceInstance(
            design.devices["Prompter"], "p1", CallableDriver()
        )
        with pytest.raises(ActuationError):
            prompter.act("askQuestion", question="q", volume=10)

    def test_parameter_type_checked(self, design):
        prompter = DeviceInstance(
            design.devices["Prompter"], "p1", CallableDriver()
        )
        with pytest.raises(ValueConformanceError):
            prompter.act("askQuestion", question=42)

    def test_snake_case_method_drivers(self, design):
        class Driver(DeviceDriver):
            def __init__(self):
                self.questions = []

            def do_ask_question(self, question):
                self.questions.append(question)

        driver = Driver()
        prompter = DeviceInstance(
            design.devices["Prompter"], "p1", driver
        )
        prompter.act("askQuestion", question="hi")
        assert driver.questions == ["hi"]

    def test_missing_action_handler(self, design):
        cooker = DeviceInstance(
            design.devices["Cooker"], "c1", DeviceDriver()
        )
        with pytest.raises(ActuationError, match="no handler"):
            cooker.act("Off")


class TestFailureState:
    def test_failed_device_refuses_reads(self, design):
        instance = sensor(design)
        instance.fail()
        with pytest.raises(DeliveryError, match="failed"):
            instance.read("presence")

    def test_failed_device_drops_pushes(self, design):
        instance = sensor(design)
        got = []
        instance.attach(lambda *args: got.append(args))
        instance.fail()
        instance.publish("presence", True)
        assert got == []

    def test_failed_device_refuses_actions(self, design):
        cooker = DeviceInstance(
            design.devices["Cooker"], "c1",
            CallableDriver(actions={"Off": lambda: None}),
        )
        cooker.fail()
        with pytest.raises(ActuationError):
            cooker.act("Off")

    def test_recovery_restores_service(self, design):
        instance = sensor(design)
        instance.fail()
        instance.recover()
        assert instance.read("presence") is True
