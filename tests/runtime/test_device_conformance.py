"""C5 — heterogeneity and taxonomy (§III).

"An implementation of a device is required to implement the three data
delivery modes, providing flexibility to client applications": every
bundled driver must serve query-driven reads, survive periodic polling,
and (where it pushes) emit well-typed events.  Device declarations form
a reusable taxonomy: supertypes are shared across applications.
"""

import pytest

from repro.apps.cooker import build_cooker_app
from repro.apps.homeassist import build_homeassist_app
from repro.apps.parking import build_parking_app
from repro.errors import ValueConformanceError
from repro.sema.analyzer import analyze
from repro.typesys.values import check_value


def all_apps():
    return [
        build_cooker_app(),
        build_parking_app(capacities={"A22": 3}),
        build_homeassist_app(),
    ]


class TestThreeDeliveryModes:
    def test_every_bound_source_serves_query_driven_reads(self):
        """Mode 1 (query) and mode 2 (periodic) both go through read();
        every source of every bound device must serve it with a value of
        the declared type."""
        for bundle in all_apps():
            for instance in bundle.application.registry:
                for source_name, source_info in instance.info.sources.items():
                    value = instance.read(source_name)
                    check_value(source_info.dia_type, value)

    def test_periodic_polling_covers_whole_fleet(self):
        app = build_parking_app(capacities={"A22": 10}, seed=1)
        app.advance(600)
        # every sensor was polled exactly once per sweep: free + occupied
        # spaces sum to capacity
        status = app.entrance_panels["A22"].status
        free = 0 if status == "FULL" else int(status.split(": ")[1])
        occupied = round(app.environment.occupancy("A22") * 10)
        assert free + occupied == 10

    def test_event_driven_pushes_are_type_checked(self):
        app = build_cooker_app()
        prompter = app.application.registry.get("tv-living-room")
        with pytest.raises(ValueConformanceError):
            prompter.publish("answer", 42)  # answer is a String

    def test_clock_driver_supports_all_three_modes(self):
        app = build_cooker_app()
        instance = app.application.registry.get("wall-clock")
        app.advance(65)
        # query-driven
        assert instance.read("tickSecond") == 65
        assert instance.read("tickMinute") == 1
        # event-driven already proven: Alert activated every second
        assert app.application.stats["context_activations"]["Alert"] == 65


class TestTaxonomyReuse:
    def test_display_panel_supertype_shared(self):
        """Figure 6: ParkingEntrancePanel and CityEntrancePanel both
        extend DisplayPanel and are discoverable through it."""
        app = build_parking_app(capacities={"A22": 1})
        panels = app.application.discover.display_panels()
        types = {proxy.device_type for proxy in panels}
        assert types == {"ParkingEntrancePanel", "CityEntrancePanel"}

    def test_supertype_action_reaches_all_variants(self):
        app = build_parking_app(capacities={"A22": 1})
        results = app.application.discover.display_panels().update(
            status="MAINTENANCE"
        )
        assert len(results) == 3  # 1 entrance + 2 city panels
        assert app.entrance_panels["A22"].status == "MAINTENANCE"

    def test_taxonomy_fragment_reusable_across_designs(self):
        """The same device declarations can seed a different application
        — the 'taxonomy dedicated to a given area, used across
        applications' of §III."""
        taxonomy = """
device DisplayPanel { action update(status as String); }
device ParkingEntrancePanel extends DisplayPanel {
    attribute location as LotEnum;
}
enumeration LotEnum { A22 }
"""
        other_app = taxonomy + """
context Heartbeat as Integer { when required; }
controller Refresher {
    when provided Heartbeat
    do update on DisplayPanel;
}
"""
        # Only publishable contexts can drive controllers: make Heartbeat
        # publish via a device-less design? Controllers need publishing
        # providers, so this design must fail analysis...
        with pytest.raises(Exception):
            analyze(other_app)
        # ...while the taxonomy plus a periodic design analyzes cleanly.
        periodic_app = taxonomy + """
device Pinger { source ping as Integer; }
context Heartbeat as Integer {
    when provided ping from Pinger
    always publish;
}
controller Refresher {
    when provided Heartbeat
    do update on DisplayPanel;
}
"""
        design = analyze(periodic_app)
        assert design.devices["ParkingEntrancePanel"].is_subtype_of(
            "DisplayPanel"
        )
