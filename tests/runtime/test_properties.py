"""Property-based invariants of the core runtime substrates."""

from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.bus import EventBus
from repro.runtime.clock import SimulationClock


# ---------------------------------------------------------------------------
# SimulationClock
# ---------------------------------------------------------------------------

delays = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=30,
)


@given(delays)
def test_jobs_fire_in_time_order(delay_list):
    clock = SimulationClock()
    fired = []
    for delay in delay_list:
        clock.schedule(delay, lambda d=delay: fired.append(clock.now()))
    clock.advance(2000.0)
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)


@given(delays)
def test_every_job_fires_exactly_at_its_time(delay_list):
    clock = SimulationClock()
    fired = []
    for delay in delay_list:
        clock.schedule(delay, lambda d=delay: fired.append((clock.now(), d)))
    clock.advance(2000.0)
    for fired_at, delay in fired:
        assert fired_at == delay


@given(delays, st.floats(min_value=0.0, max_value=1000.0))
def test_advance_splits_are_equivalent(delay_list, split):
    def run(splits):
        clock = SimulationClock()
        fired = []
        for delay in delay_list:
            clock.schedule(delay, lambda d=delay: fired.append(d))
        for duration in splits:
            clock.advance(duration)
        return fired

    whole = run([2000.0])
    parts = run([split, 2000.0 - split if split <= 2000.0 else 0.0])
    assert whole == parts


@given(
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=0.0, max_value=2000.0),
)
def test_periodic_fire_count_matches_period(period, horizon):
    clock = SimulationClock()
    count = [0]
    clock.schedule_periodic(period, lambda: count.__setitem__(0,
                                                              count[0] + 1))
    clock.advance(horizon)
    expected = int(horizon / period)
    # floating division may be off by one at exact multiples
    assert abs(count[0] - expected) <= 1


# ---------------------------------------------------------------------------
# EventBus
# ---------------------------------------------------------------------------


@given(
    st.lists(st.tuples(st.sampled_from("abc"), st.integers()), max_size=40)
)
def test_bus_delivers_everything_to_topic_subscribers(publications):
    bus = EventBus()
    received = {topic: [] for topic in "abc"}
    for topic in "abc":
        bus.subscribe(topic, received[topic].append)
    for topic, value in publications:
        bus.publish(topic, value)
    for topic in "abc":
        expected = [v for t, v in publications if t == topic]
        assert received[topic] == expected


@given(st.integers(min_value=0, max_value=20), st.integers(min_value=0,
                                                           max_value=10))
def test_bus_fanout_counts(subscribers, publications):
    bus = EventBus()
    for __ in range(subscribers):
        bus.subscribe("t", lambda __: None)
    for __ in range(publications):
        assert bus.publish("t", None) == subscribers
    assert bus.stats()["delivered"] == subscribers * publications
    assert bus.stats()["published"] == publications
