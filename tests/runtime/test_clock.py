"""Simulation and wall clocks."""

import threading
import time

import pytest

from repro.runtime.clock import SimulationClock, WallClock


class TestSimulationClockBasics:
    def test_starts_at_zero(self):
        assert SimulationClock().now() == 0.0

    def test_custom_start(self):
        assert SimulationClock(start=100.0).now() == 100.0

    def test_advance_moves_time_even_without_jobs(self, clock):
        clock.advance(5.0)
        assert clock.now() == 5.0

    def test_advance_backwards_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_negative_delay_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.schedule(-1.0, lambda: None)

    def test_nonpositive_period_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.schedule_periodic(0.0, lambda: None)


class TestOneShotJobs:
    def test_fires_at_exact_time(self, clock):
        fired = []
        clock.schedule(5.0, lambda: fired.append(clock.now()))
        clock.advance(10.0)
        assert fired == [5.0]
        assert clock.now() == 10.0

    def test_does_not_fire_early(self, clock):
        fired = []
        clock.schedule(5.0, lambda: fired.append(True))
        clock.advance(4.999)
        assert fired == []
        clock.advance(0.001)
        assert fired == [True]

    def test_cancellation(self, clock):
        fired = []
        job = clock.schedule(1.0, lambda: fired.append(True))
        job.cancel()
        clock.advance(2.0)
        assert fired == []

    def test_fifo_order_for_simultaneous_jobs(self, clock):
        order = []
        clock.schedule(1.0, lambda: order.append("a"))
        clock.schedule(1.0, lambda: order.append("b"))
        clock.advance(1.0)
        assert order == ["a", "b"]

    def test_jobs_scheduled_by_callbacks_fire_in_same_window(self, clock):
        fired = []

        def first():
            fired.append("first")
            clock.schedule(1.0, lambda: fired.append("second"))

        clock.schedule(1.0, first)
        clock.advance(3.0)
        assert fired == ["first", "second"]

    def test_advance_returns_fired_count(self, clock):
        clock.schedule(1.0, lambda: None)
        clock.schedule(2.0, lambda: None)
        assert clock.advance(5.0) == 2


class TestPeriodicJobs:
    def test_fires_every_period(self, clock):
        times = []
        clock.schedule_periodic(10.0, lambda: times.append(clock.now()))
        clock.advance(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_cancel_stops_periodic(self, clock):
        times = []
        job = clock.schedule_periodic(10.0, lambda: times.append(clock.now()))
        clock.advance(25.0)
        job.cancel()
        clock.advance(100.0)
        assert times == [10.0, 20.0]

    def test_raising_callback_does_not_kill_schedule(self, clock):
        calls = []

        def flaky():
            calls.append(clock.now())
            if len(calls) == 1:
                raise RuntimeError("transient")

        clock.schedule_periodic(10.0, flaky)
        with pytest.raises(RuntimeError):
            clock.advance(10.0)
        clock.advance(10.0)
        assert calls == [10.0, 20.0]

    def test_interleaving_of_different_periods(self, clock):
        order = []
        clock.schedule_periodic(2.0, lambda: order.append("fast"))
        clock.schedule_periodic(3.0, lambda: order.append("slow"))
        clock.advance(6.0)
        # t=2 fast, t=3 slow, t=4 fast, t=6 slow then fast (the slow job
        # was re-armed at t=3, before fast's t=4 re-arm, so it wins the tie)
        assert order == ["fast", "slow", "fast", "slow", "fast"]


class TestIntrospection:
    def test_pending(self, clock):
        clock.schedule(1.0, lambda: None)
        job = clock.schedule(2.0, lambda: None)
        assert clock.pending() == 2
        job.cancel()
        assert clock.pending() == 1

    def test_next_event_at(self, clock):
        assert clock.next_event_at() is None
        clock.schedule(3.0, lambda: None)
        assert clock.next_event_at() == 3.0


class TestWallClock:
    def test_now_is_monotonic(self):
        wall = WallClock()
        a = wall.now()
        b = wall.now()
        assert b >= a

    def test_one_shot_fires(self):
        wall = WallClock()
        event = threading.Event()
        wall.schedule(0.01, event.set)
        assert event.wait(timeout=2.0)
        wall.shutdown()

    def test_cancelled_job_does_not_fire(self):
        wall = WallClock()
        fired = []
        job = wall.schedule(0.05, lambda: fired.append(True))
        job.cancel()
        time.sleep(0.1)
        assert fired == []
        wall.shutdown()

    def test_periodic_fires_repeatedly(self):
        wall = WallClock()
        hits = []
        job = wall.schedule_periodic(0.01, lambda: hits.append(1))
        deadline = time.monotonic() + 2.0
        while len(hits) < 3 and time.monotonic() < deadline:
            time.sleep(0.005)
        job.cancel()
        wall.shutdown()
        assert len(hits) >= 3
