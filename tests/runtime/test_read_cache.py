"""The query-driven read fast path: ReadCache + context memoization.

Covers the cache record itself (TTL freshness on the application
clock, single-flight coalescing, invalidation indexes, generation) and
its wiring through the application (bind/unbind, actuation and publish
invalidation, gather memoization, ``query_context`` memo, metrics and
stats surfaces).  The off-by-default guarantee — no cache object, one
driver read per pull — is pinned explicitly.
"""

import threading

import pytest

from repro.api import ContextNotQueryableError
from repro.errors import DeliveryError
from repro.runtime.app import Application
from repro.runtime.cache import CacheConfig, ReadCache
from repro.runtime.clock import SimulationClock
from repro.runtime.component import Context
from repro.runtime.config import RuntimeConfig
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor {
    attribute zone as ZoneEnum;
    source reading as Float;
    action Nudge;
}

enumeration ZoneEnum { NORTH, SOUTH }

context Snapshot as Float[] {
    when required;
}

context Sweep as Integer {
    when periodic reading from Sensor <1 min>
    always publish;
}
"""


class SnapshotContext(Context):
    def when_required(self, discover):
        return [proxy.reading() for proxy in discover.devices("Sensor")]


class SweepContext(Context):
    def __init__(self):
        super().__init__()
        self.activations = 0

    def on_periodic_reading(self, readings, discover):
        self.activations += 1
        return len(readings)


class CountingSource:
    """A driver source with a call counter and settable value."""

    def __init__(self, value=1.0):
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        return self.value


def build(cache=None, sensors=2):
    clock = SimulationClock()
    config = RuntimeConfig(
        clock=clock, cache=cache if cache is not None else CacheConfig()
    )
    app = Application(analyze(DESIGN), config)
    app.implement("Snapshot", SnapshotContext())
    sweep = SweepContext()
    app.implement("Sweep", sweep)
    sources = {}
    for i in range(sensors):
        source = CountingSource(value=float(i))
        sources[f"s-{i}"] = source
        app.create_device(
            "Sensor",
            f"s-{i}",
            CallableDriver(
                sources={"reading": source}, actions={"Nudge": lambda: None}
            ),
            zone="NORTH" if i % 2 == 0 else "SOUTH",
        )
    app.start()
    return app, clock, sources, sweep


ON = CacheConfig(enabled=True, ttl_seconds=10.0)


class TestCacheConfig:
    def test_defaults_are_disabled(self):
        config = CacheConfig()
        assert not config.enabled
        assert config.context_ttl == config.ttl_seconds

    def test_context_ttl_override(self):
        config = CacheConfig(ttl_seconds=5.0, context_ttl_seconds=1.0)
        assert config.context_ttl == 1.0

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(ttl_seconds=-1.0)
        with pytest.raises(ValueError):
            CacheConfig(context_ttl_seconds=-0.5)

    def test_runtime_config_validates_type(self):
        with pytest.raises(TypeError):
            RuntimeConfig(cache="yes please")


class TestFreshness:
    def test_hit_within_ttl_miss_after(self):
        app, clock, sources, __ = build(ON)
        proxy = app.discover.device("s-0")
        assert proxy.reading() == 0.0
        assert proxy.reading() == 0.0
        assert sources["s-0"].calls == 1  # second pull was a hit
        clock.advance(ON.ttl_seconds + 0.1)
        assert proxy.reading() == 0.0
        assert sources["s-0"].calls == 2  # expired entry re-read
        stats = app.read_cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2

    def test_zero_ttl_caches_within_one_instant(self):
        app, clock, sources, __ = build(
            CacheConfig(enabled=True, ttl_seconds=0.0)
        )
        proxy = app.discover.device("s-0")
        proxy.reading()
        proxy.reading()  # same simulated instant: still fresh
        assert sources["s-0"].calls == 1
        clock.advance(0.001)
        proxy.reading()
        assert sources["s-0"].calls == 2

    def test_peek_wraps_value_and_age(self):
        app, clock, __, __sweep = build(ON)
        cache = app.read_cache
        assert cache.peek("s-0", "reading") is None
        app.discover.device("s-0").reading()
        clock.advance(2.0)
        value, age = cache.peek("s-0", "reading")
        assert value == 0.0
        assert age == 2.0
        clock.advance(ON.ttl_seconds)
        assert cache.peek("s-0", "reading") is None

    def test_off_by_default_is_byte_identical(self):
        app, __, sources, __sweep = build()
        assert app.read_cache is None
        proxy = app.discover.device("s-0")
        proxy.reading()
        proxy.reading()
        assert sources["s-0"].calls == 2  # every read reaches the driver
        assert app.stats["read_cache"] is None


class TestSingleFlight:
    def test_concurrent_misses_share_one_read(self):
        clock = SimulationClock()
        cache = ReadCache(clock, CacheConfig(enabled=True, ttl_seconds=10.0))
        gate = threading.Event()
        calls = []

        class FakeInstance:
            entity_id = "s-0"
            attributes = {}

        def slow_read():
            calls.append(1)
            gate.wait(timeout=5.0)
            return 42.0

        results = []

        def puller():
            results.append(
                cache.get_or_read(FakeInstance(), "reading", slow_read)
            )

        threads = [threading.Thread(target=puller) for _ in range(4)]
        for thread in threads:
            thread.start()
        while cache.stats()["coalesced"] < 3:
            pass  # wait until the followers parked on the flight
        gate.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert results == [42.0] * 4
        assert len(calls) == 1
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["coalesced"] == 3

    def test_leader_error_propagates_to_followers_and_caches_nothing(self):
        clock = SimulationClock()
        cache = ReadCache(clock, CacheConfig(enabled=True, ttl_seconds=10.0))
        gate = threading.Event()

        class FakeInstance:
            entity_id = "s-0"
            attributes = {}

        def failing_read():
            gate.wait(timeout=5.0)
            raise DeliveryError("sensor is dark")

        errors = []

        def puller():
            try:
                cache.get_or_read(FakeInstance(), "reading", failing_read)
            except DeliveryError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=puller) for _ in range(3)]
        for thread in threads:
            thread.start()
        while cache.stats()["coalesced"] < 2:
            pass
        gate.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(errors) == 3
        assert len(cache) == 0  # the failure was not cached

    def test_coalesce_off_counts_every_miss(self):
        clock = SimulationClock()
        cache = ReadCache(
            clock, CacheConfig(enabled=True, ttl_seconds=0.0, coalesce=False)
        )

        class FakeInstance:
            entity_id = "s-0"
            attributes = {}

        clock.advance(1.0)
        cache.get_or_read(FakeInstance(), "reading", lambda: 1.0)
        clock.advance(1.0)
        cache.get_or_read(FakeInstance(), "reading", lambda: 2.0)
        stats = cache.stats()
        assert stats["misses"] == 2
        assert stats["coalesced"] == 0


class TestInvalidation:
    def test_actuation_invalidates_that_devices_sources(self):
        app, __, sources, __sweep = build(ON)
        proxies = {
            entity_id: app.discover.device(entity_id)
            for entity_id in sources
        }
        for proxy in proxies.values():
            proxy.reading()
        generation = app.read_cache.generation
        proxies["s-0"].nudge()
        assert app.read_cache.generation > generation
        proxies["s-0"].reading()
        proxies["s-1"].reading()
        assert sources["s-0"].calls == 2  # actuated: re-read
        assert sources["s-1"].calls == 1  # untouched: still cached

    def test_publish_invalidates_publisher_entry(self):
        app, __, sources, __sweep = build(ON)
        proxy = app.discover.device("s-0")
        proxy.reading()
        instance = app.registry.get("s-0")
        instance.publish("reading", 9.0)
        proxy.reading()
        assert sources["s-0"].calls == 2

    def test_publish_invalidation_can_be_disabled(self):
        app, __, sources, __sweep = build(
            CacheConfig(
                enabled=True, ttl_seconds=10.0, invalidate_on_publish=False
            )
        )
        proxy = app.discover.device("s-0")
        proxy.reading()
        app.registry.get("s-0").publish("reading", 9.0)
        proxy.reading()
        assert sources["s-0"].calls == 1

    def test_shard_invalidation_drops_the_cohort(self):
        app, __, sources, __sweep = build(
            CacheConfig(
                enabled=True, ttl_seconds=10.0, shard_attribute="zone"
            ),
            sensors=4,
        )
        for entity_id in sources:
            app.discover.device(entity_id).reading()
        # s-0 and s-2 share zone NORTH; a publish from s-0 drops both.
        app.registry.get("s-0").publish("reading", 9.0)
        for entity_id in sources:
            app.discover.device(entity_id).reading()
        assert sources["s-0"].calls == 2
        assert sources["s-2"].calls == 2
        assert sources["s-1"].calls == 1
        assert sources["s-3"].calls == 1

    def test_unbind_invalidates(self):
        app, __, sources, __sweep = build(ON)
        app.discover.device("s-0").reading()
        assert len(app.read_cache) == 1
        app.unbind_device("s-0")
        assert len(app.read_cache) == 0

    def test_invalidate_bumps_generation_even_when_empty(self):
        cache = ReadCache(SimulationClock(), CacheConfig(enabled=True))
        generation = cache.generation
        assert cache.invalidate("ghost") == 0
        assert cache.generation == generation + 1

    def test_clear(self):
        app, __, sources, __sweep = build(ON)
        for entity_id in sources:
            app.discover.device(entity_id).reading()
        assert app.read_cache.clear() == len(sources)
        assert len(app.read_cache) == 0


class TestContextMemoization:
    def test_query_context_memoized_within_ttl(self):
        app, clock, sources, __sweep = build(ON)
        first = app.query_context("Snapshot")
        again = app.query_context("Snapshot")
        assert first == again
        assert sources["s-0"].calls == 1
        assert app.stats["context_cache_hits"]["Snapshot"] == 1
        clock.advance(ON.context_ttl + 0.1)
        app.query_context("Snapshot")
        assert sources["s-0"].calls == 2

    def test_actuation_expires_query_memo(self):
        app, __, sources, __sweep = build(ON)
        app.query_context("Snapshot")
        app.discover.device("s-0").nudge()
        sources["s-0"].value = 5.0
        assert app.query_context("Snapshot")[0] == 5.0

    def test_gather_skips_recompute_on_unchanged_payload(self):
        app, clock, __, sweep = build(ON)
        clock.advance(60.0)
        clock.advance(60.0)
        clock.advance(60.0)
        assert sweep.activations == 1  # identical payloads collapsed
        assert app.stats["context_cache_hits"]["Sweep"] == 2
        metric = app.metrics.value(
            "context_cache_hits_total", component="Sweep"
        )
        assert metric == 2

    def test_gather_reactivates_on_changed_payload(self):
        app, clock, sources, sweep = build(ON)
        clock.advance(60.0)
        sources["s-0"].value = 7.0
        app.discover.device("s-0").nudge()  # invalidate the read cache
        clock.advance(60.0)
        assert sweep.activations == 2

    def test_memoization_can_be_disabled(self):
        app, clock, __, sweep = build(
            CacheConfig(
                enabled=True, ttl_seconds=10.0, memoize_contexts=False
            )
        )
        clock.advance(60.0)
        clock.advance(60.0)
        assert sweep.activations == 2
        assert app.stats["context_cache_hits"] == {}


class TestTypedQueryError:
    def test_non_queryable_context_raises_typed_error(self):
        app, __, __sources, __sweep = build()
        with pytest.raises(ContextNotQueryableError) as excinfo:
            app.query_context("Sweep")
        assert excinfo.value.context == "Sweep"
        assert "when required" in str(excinfo.value)

    def test_typed_error_is_a_delivery_error(self):
        # Existing broad handlers keep catching it.
        assert issubclass(ContextNotQueryableError, DeliveryError)

    def test_unknown_context_message_unchanged(self):
        app, __, __sources, __sweep = build()
        with pytest.raises(DeliveryError, match="unknown context"):
            app.query_context("Nope")


class TestMetrics:
    def test_cache_metric_families_exported(self):
        app, __, __sources, __sweep = build(ON)
        proxy = app.discover.device("s-0")
        proxy.reading()
        proxy.reading()
        assert app.metrics.value("read_cache_hits_total") == 1
        assert app.metrics.value("read_cache_misses_total") == 1
        assert app.metrics.value("read_cache_entries") == 1
        proxy.nudge()
        assert app.metrics.value("read_cache_invalidations_total") == 1
        age_histogram = app.metrics.get("read_cache_age_seconds")
        assert age_histogram is not None

    def test_stats_view_matches_metrics(self):
        app, __, __sources, __sweep = build(ON)
        proxy = app.discover.device("s-0")
        proxy.reading()
        proxy.reading()
        stats = app.stats["read_cache"]
        assert stats["hits"] == app.metrics.value("read_cache_hits_total")
        assert stats["misses"] == app.metrics.value(
            "read_cache_misses_total"
        )
        assert stats["entries"] == 1
        assert "generation" in stats
