"""Network-conditions injection between devices and the application."""

import pytest

from repro.runtime.app import Application
from repro.runtime.clock import SimulationClock
from repro.runtime.config import RuntimeConfig
from repro.runtime.component import Context
from repro.runtime.device import CallableDriver
from repro.runtime.placement import NetworkConfig
from repro.sema.analyzer import analyze
from repro.simulation.network import (
    HopProfile,
    NetworkConditions,
    TopologyModel,
)

DESIGN = """\
device Sensor { source reading as Float; }
context Sink as Float {
    when provided reading from Sensor
    maybe publish;
}
context Sweep as Integer {
    when periodic reading from Sensor <1 min>
    always publish;
}
"""


class SinkImpl(Context):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_reading_from_sensor(self, event, discover):
        self.received.append((event.timestamp, event.value))
        return None


class SweepImpl(Context):
    def __init__(self):
        super().__init__()
        self.sizes = []

    def on_periodic_reading(self, readings, discover):
        self.sizes.append(len(readings))
        return len(readings)


def build(network=None):
    config = (
        RuntimeConfig()
        if network is None
        else RuntimeConfig(network=network)
    )
    app = Application(analyze(DESIGN), config)
    sink = SinkImpl()
    sweep = SweepImpl()
    app.implement("Sink", sink)
    app.implement("Sweep", sweep)
    sensor = app.create_device(
        "Sensor", "s1", CallableDriver(sources={"reading": lambda: 1.0})
    )
    app.start()
    return app, sensor, sink, sweep


class TestNetworkConditionsModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConditions(latency=-1)
        with pytest.raises(ValueError):
            NetworkConditions(loss=1.0)
        with pytest.raises(ValueError):
            NetworkConditions(latency=1.0, jitter=2.0)

    def test_zero_loss_never_drops(self):
        network = NetworkConditions(loss=0.0)
        assert all(network.sample_read_ok() for __ in range(100))

    def test_stats(self):
        network = NetworkConditions(loss=0.5, seed=1)
        clock = SimulationClock()
        for __ in range(200):
            network.transmit(clock, lambda: None)
        stats = network.stats()
        assert stats["delivered"] + stats["dropped"] == 200
        assert 0.3 < stats["loss_rate"] < 0.7


class TestNetworkConfig:
    def test_flat_config_builds_conditions(self):
        config = NetworkConfig(latency=2.0, jitter=0.5, loss=0.1, seed=4)
        model = config.build()
        assert isinstance(model, NetworkConditions)
        assert model.latency == 2.0
        assert model.loss == 0.1

    def test_empty_config_builds_nothing(self):
        assert NetworkConfig().build() is None
        assert not NetworkConfig().enabled

    def test_hops_build_topology(self):
        config = NetworkConfig(
            hops={"access": HopProfile(latency=0.1), "wan": HopProfile()}
        )
        model = config.build()
        assert isinstance(model, TopologyModel)
        assert model.hop_names == ("access", "wan")

    def test_hops_exclude_flat_parameters(self):
        with pytest.raises(ValueError):
            NetworkConfig(latency=1.0, hops={"wan": HopProfile()})

    def test_flat_parameters_validated_eagerly(self):
        with pytest.raises(ValueError):
            NetworkConfig(loss=1.5)


class TestTopologyModel:
    def test_transmit_sums_hop_latency(self):
        topology = TopologyModel(
            {"access": HopProfile(latency=2.0), "wan": HopProfile(latency=3.0)}
        )
        clock = SimulationClock()
        delivered = []
        topology.transmit(clock, lambda: delivered.append(clock.now()))
        clock.advance(5.0)
        assert delivered == [5.0]
        assert topology.delivered == 2  # one per hop

    def test_bandwidth_extends_transit_time(self):
        topology = TopologyModel(
            {"wan": HopProfile(latency=1.0, bandwidth=100.0)}
        )
        assert topology.transit_time(nbytes=200) == pytest.approx(3.0)

    def test_loss_on_any_hop_drops(self):
        topology = TopologyModel(
            {"access": HopProfile(), "wan": HopProfile(loss=0.9)}, seed=3
        )
        clock = SimulationClock()
        delivered = []
        for __ in range(100):
            topology.transmit(clock, lambda: delivered.append(1))
        clock.advance(1.0)
        assert len(delivered) < 50
        assert topology.dropped + len(delivered) == 100

    def test_byte_accounting_per_hop(self):
        topology = TopologyModel(
            {"access": HopProfile(), "wan": HopProfile()}
        )
        topology.account(None, nbytes=10)
        topology.account(("wan",), nbytes=5)
        hops = topology.stats()["hops"]
        assert hops["access"]["bytes"] == 10
        assert hops["wan"]["bytes"] == 15


class TestEventDeliveryThroughNetwork:
    def test_latency_delays_event(self):
        app, sensor, sink, __ = build(NetworkConfig(latency=5.0))
        sensor.publish("reading", 3.0)
        assert sink.received == []  # still in flight
        app.advance(5.0)
        assert sink.received == [(5.0, 3.0)]

    def test_loss_drops_events(self):
        app, sensor, sink, __ = build(NetworkConfig(loss=0.5, seed=3))
        for __ in range(100):
            sensor.publish("reading", 1.0)
        app.advance(1.0)
        assert 20 < len(sink.received) < 80
        assert app.network.dropped + len(sink.received) == 100

    def test_jitter_stays_within_bounds(self):
        network = NetworkConfig(latency=10.0, jitter=2.0, seed=9).build()
        delays = [network.sample_delay() for __ in range(200)]
        assert all(8.0 <= d <= 12.0 for d in delays)

    def test_no_network_is_synchronous(self):
        app, sensor, sink, __ = build(None)
        sensor.publish("reading", 1.0)
        assert len(sink.received) == 1

    def test_topology_delivery_crosses_every_hop(self):
        app, sensor, sink, __ = build(
            NetworkConfig(
                hops={
                    "access": HopProfile(latency=1.0),
                    "wan": HopProfile(latency=4.0),
                }
            )
        )
        sensor.publish("reading", 2.0)
        assert sink.received == []
        app.advance(5.0)
        assert sink.received == [(5.0, 2.0)]


class TestPolledReadsThroughNetwork:
    def test_lossy_reads_shrink_sweeps(self):
        app, __, __, sweep = build(
            NetworkConfig(loss=0.9, seed=5, apply_to_reads=True)
        )
        app.advance(60 * 50)
        assert len(sweep.sizes) == 50
        assert sum(sweep.sizes) < 50  # many polls lost
        assert app.stats["gather_errors"] > 0

    def test_reads_unaffected_by_default(self):
        app, __, __, sweep = build(NetworkConfig(loss=0.9, seed=5))
        app.advance(60 * 10)
        assert sweep.sizes == [1] * 10


class TestLegacyNetworkKwargs:
    def test_model_instance_on_config_is_silent_passthrough(self):
        import warnings as warnings_module

        network = NetworkConditions(latency=5.0)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            config = RuntimeConfig(network=network)
        app = Application(analyze(DESIGN), config)
        assert app.network is network

    def test_model_instance_application_kwarg_warns_once(self):
        network = NetworkConditions(latency=5.0)
        with pytest.warns(DeprecationWarning) as caught:
            app = Application(analyze(DESIGN), network=network)
        assert app.network is network
        deprecations = [
            w for w in caught if w.category is DeprecationWarning
        ]
        assert len(deprecations) == 1
        assert "NetworkConfig" in str(deprecations[0].message)

    def test_apply_network_to_reads_kwarg_warns_once(self):
        with pytest.warns(DeprecationWarning) as caught:
            app = Application(
                analyze(DESIGN),
                network=NetworkConfig(loss=0.9, seed=5),
                apply_network_to_reads=True,
            )
        assert app.apply_network_to_reads
        deprecations = [
            w for w in caught if w.category is DeprecationWarning
        ]
        assert len(deprecations) == 1
        assert "apply_to_reads" in str(deprecations[0].message)

    def test_network_without_transmit_is_a_type_error(self):
        with pytest.raises(TypeError, match="transmit"):
            RuntimeConfig(network=42)
