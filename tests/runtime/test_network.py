"""Network-conditions injection between devices and the application."""

import pytest

from repro.runtime.app import Application
from repro.runtime.config import RuntimeConfig
from repro.runtime.component import Context
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze
from repro.simulation.network import NetworkConditions

DESIGN = """\
device Sensor { source reading as Float; }
context Sink as Float {
    when provided reading from Sensor
    maybe publish;
}
context Sweep as Integer {
    when periodic reading from Sensor <1 min>
    always publish;
}
"""


class SinkImpl(Context):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_reading_from_sensor(self, event, discover):
        self.received.append((event.timestamp, event.value))
        return None


class SweepImpl(Context):
    def __init__(self):
        super().__init__()
        self.sizes = []

    def on_periodic_reading(self, readings, discover):
        self.sizes.append(len(readings))
        return len(readings)


def build(network=None, apply_to_reads=False):
    app = Application(
        analyze(DESIGN),
        RuntimeConfig(
            network=network,
            apply_network_to_reads=apply_to_reads,
        ),
    )
    sink = SinkImpl()
    sweep = SweepImpl()
    app.implement("Sink", sink)
    app.implement("Sweep", sweep)
    sensor = app.create_device(
        "Sensor", "s1", CallableDriver(sources={"reading": lambda: 1.0})
    )
    app.start()
    return app, sensor, sink, sweep


class TestNetworkConditionsModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConditions(latency=-1)
        with pytest.raises(ValueError):
            NetworkConditions(loss=1.0)
        with pytest.raises(ValueError):
            NetworkConditions(latency=1.0, jitter=2.0)

    def test_zero_loss_never_drops(self):
        network = NetworkConditions(loss=0.0)
        assert all(network.sample_read_ok() for __ in range(100))

    def test_stats(self):
        from repro.runtime.clock import SimulationClock

        network = NetworkConditions(loss=0.5, seed=1)
        clock = SimulationClock()
        for __ in range(200):
            network.transmit(clock, lambda: None)
        stats = network.stats
        assert stats["delivered"] + stats["dropped"] == 200
        assert 0.3 < stats["loss_rate"] < 0.7


class TestEventDeliveryThroughNetwork:
    def test_latency_delays_event(self):
        network = NetworkConditions(latency=5.0)
        app, sensor, sink, __ = build(network)
        sensor.publish("reading", 3.0)
        assert sink.received == []  # still in flight
        app.advance(5.0)
        assert sink.received == [(5.0, 3.0)]

    def test_loss_drops_events(self):
        network = NetworkConditions(loss=0.5, seed=3)
        app, sensor, sink, __ = build(network)
        for __ in range(100):
            sensor.publish("reading", 1.0)
        app.advance(1.0)
        assert 20 < len(sink.received) < 80
        assert network.dropped + len(sink.received) == 100

    def test_jitter_stays_within_bounds(self):
        network = NetworkConditions(latency=10.0, jitter=2.0, seed=9)
        delays = [network.sample_delay() for __ in range(200)]
        assert all(8.0 <= d <= 12.0 for d in delays)

    def test_no_network_is_synchronous(self):
        app, sensor, sink, __ = build(None)
        sensor.publish("reading", 1.0)
        assert len(sink.received) == 1


class TestPolledReadsThroughNetwork:
    def test_lossy_reads_shrink_sweeps(self):
        network = NetworkConditions(loss=0.9, seed=5)
        app, __, __, sweep = build(network, apply_to_reads=True)
        app.advance(60 * 50)
        assert len(sweep.sizes) == 50
        assert sum(sweep.sizes) < 50  # many polls lost
        assert app.stats["gather_errors"] > 0

    def test_reads_unaffected_by_default(self):
        network = NetworkConditions(loss=0.9, seed=5)
        app, __, __, sweep = build(network, apply_to_reads=False)
        app.advance(60 * 10)
        assert sweep.sizes == [1] * 10
