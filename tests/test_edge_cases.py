"""Edge cases across the stack that no single module suite owns."""

import pytest

from repro.errors import DiaSpecSyntaxError
from repro.lang.ast_nodes import Duration, GroupBy
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.sema.analyzer import analyze
from repro.typesys.core import TypeEnvironment


class TestDurations:
    def test_str_integral(self):
        assert str(Duration(10, "min")) == "<10 min>"

    def test_str_fractional(self):
        assert str(Duration(2.5, "s")) == "<2.5 s>"

    def test_invalid_unit(self):
        with pytest.raises(ValueError, match="unit"):
            Duration(1, "parsec")

    def test_nonpositive(self):
        with pytest.raises(ValueError):
            Duration(0, "s")
        with pytest.raises(ValueError):
            Duration(-1, "min")

    def test_seconds_conversions(self):
        assert Duration(1, "day").seconds == 86400.0
        assert Duration(500, "ms").seconds == 0.5


class TestGroupByNode:
    def test_uses_mapreduce(self):
        assert not GroupBy("zone").uses_mapreduce
        assert GroupBy("zone", map_type_name="Float",
                       reduce_type_name="Float").uses_mapreduce


class TestTypeEnvironment:
    def test_names_listing(self):
        env = TypeEnvironment()
        assert set(env.names()) == {"Boolean", "Float", "Integer", "String"}


class TestParserEdgeCases:
    def test_keywords_cannot_be_type_names(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse("device D { source s as when; }")

    def test_deeply_nested_array_roundtrips(self):
        spec = parse("context C as Float[][][] { when required; }")
        assert parse(pretty(spec)) == spec

    def test_comment_only_source(self):
        assert parse("// nothing here\n/* at all */").declarations == ()

    def test_duration_with_keyword_unit_rejected(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse(
                "context C as Float { when periodic s from D <5 map> "
                "always publish; }"
            )

    def test_crlf_line_endings(self):
        spec = parse("device D {\r\n    source s as Float;\r\n}\r\n")
        assert spec.devices[0].sources[0].name == "s"

    def test_unicode_rejected_in_identifiers(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse("device Dévice { }")


class TestAnalyzerEdgeCases:
    def test_enum_member_shadowing_allowed_across_enums(self):
        # The same member name in two enumerations is fine (values are
        # scoped by their enumeration type).
        analyze(
            "enumeration A { SHARED, ONLY_A }\n"
            "enumeration B { SHARED, ONLY_B }\n"
            "device D { attribute a as A; attribute b as B; }\n"
        )

    def test_device_attribute_of_structure_type(self):
        design = analyze(
            "structure GeoPoint { lat as Float; lon as Float; }\n"
            "device D { attribute position as GeoPoint; "
            "source s as Float; }\n"
        )
        assert (
            design.devices["D"].attributes["position"].dia_type.name
            == "GeoPoint"
        )

    def test_context_result_may_be_enum_array(self):
        design = analyze(
            "enumeration E { A, B }\n"
            "context C as E[] { when required; }\n"
        )
        assert design.contexts["C"].result_type.name == "E[]"

    def test_self_extends_rejected(self):
        from repro.errors import SemanticError

        with pytest.raises(SemanticError, match="cycle"):
            analyze("device D extends D { }")

    def test_two_contexts_subscribe_to_same_context(self):
        design = analyze(
            "device D { source s as Float; }\n"
            "context A as Float { when provided s from D always publish; }\n"
            "context B as Float { when provided A always publish; }\n"
            "context C as Float { when provided A always publish; }\n"
        )
        assert design.graph.layers["B"] == design.graph.layers["C"] == 2


class TestRuntimeEdgeCases:
    def test_empty_design_application_starts(self):
        from repro.runtime.app import Application

        app = Application(analyze("device D { source s as Float; }"))
        app.start()
        app.advance(100)
        assert app.stats["context_activations"] == {}

    def test_structure_attribute_registration(self):
        from repro.runtime.app import Application
        from repro.runtime.device import CallableDriver

        design = analyze(
            "structure GeoPoint { lat as Float; lon as Float; }\n"
            "device D { attribute position as GeoPoint; "
            "source s as Float; }\n"
        )
        app = Application(design)
        instance = app.create_device(
            "D", "d1", CallableDriver(sources={"s": lambda: 1.0}),
            position={"lat": 44.8, "lon": -0.58},
        )
        proxy = app.discover.devices("D").one()
        assert proxy.position.lat == 44.8
        del instance

    def test_publish_enum_array_checked(self):
        from repro.errors import ValueConformanceError
        from repro.runtime.app import Application
        from repro.runtime.component import Context
        from repro.runtime.device import CallableDriver

        design = analyze(
            "enumeration E { A, B }\n"
            "device D { source s as Float; }\n"
            "context C as E[] { when provided s from D always publish; }\n"
        )

        class Bad(Context):
            def on_s_from_d(self, event, discover):
                return ["A", "Z"]  # Z is not a member

        app = Application(design)
        app.implement("C", Bad())
        instance = app.create_device(
            "D", "d1", CallableDriver(sources={"s": lambda: 0.0})
        )
        app.start()
        with pytest.raises(ValueConformanceError):
            instance.publish("s", 1.0)
