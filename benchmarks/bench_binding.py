"""C4 — binding entities at different times (§IV).

Reproduced shape: registration cost is flat per entity (so configuration
vs deployment vs launch vs runtime binding differ in *when*, not *how
much*), runtime binding into a live application costs the same as static
binding, and discovery queries scale with registry size.
"""

import time

from repro.runtime.app import Application
from repro.runtime.binding import BindingTime, Deployment
from repro.runtime.component import Context
from repro.runtime.device import CallableDriver, DeviceInstance
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor {
    attribute zone as ZoneEnum;
    source reading as Float;
}
enumeration ZoneEnum { A, B, C, D }
context Sweep as Integer {
    when periodic reading from Sensor <10 min>
    always publish;
}
"""


class SweepImpl(Context):
    def on_periodic_reading(self, readings, discover):
        return len(readings)


def make_app():
    app = Application(analyze(DESIGN))
    app.implement("Sweep", SweepImpl())
    return app


def make_sensor(app, index):
    return DeviceInstance(
        app.design.devices["Sensor"],
        f"s{index}",
        CallableDriver(sources={"reading": lambda: 1.0}),
        {"zone": "ABCD"[index % 4]},
    )


def test_binding_time_equivalence(table, benchmark):
    """Bind 1000 sensors at each life-cycle phase; per-entity cost is the
    same order regardless of phase."""

    def run_phases():
        rows = []
        costs = {}
        for phase in (
            BindingTime.CONFIGURATION,
            BindingTime.DEPLOYMENT,
            BindingTime.LAUNCH,
            BindingTime.RUNTIME,
        ):
            app = make_app()
            deployment = Deployment(app)
            sensors = [make_sensor(app, i) for i in range(1000)]
            start = time.perf_counter()
            for sensor in sensors:
                deployment.stage(sensor, phase)
            if phase in (BindingTime.DEPLOYMENT, BindingTime.LAUNCH,
                         BindingTime.RUNTIME):
                deployment.deploy()
            deployment.launch()
            if phase is BindingTime.RUNTIME:
                deployment.bind_runtime()
            elapsed = time.perf_counter() - start
            costs[phase] = elapsed
            assert len(app.registry) == 1000
            rows.append(
                (phase.value, f"{elapsed * 1e3:.1f} ms",
                 f"{elapsed / 1000 * 1e6:.1f} us/entity")
            )
        return rows, costs

    rows, costs = benchmark.pedantic(run_phases, rounds=1, iterations=1)
    table(
        "C4: binding 1000 entities at each binding time",
        ("binding time", "total", "per entity"),
        rows,
    )
    fastest, slowest = min(costs.values()), max(costs.values())
    assert slowest < fastest * 10  # same order of magnitude


def test_bench_register_entity(benchmark):
    app = make_app()
    counter = iter(range(10 ** 9))

    def register():
        index = next(counter)
        app.create_device(
            "Sensor",
            f"bench-{index}",
            CallableDriver(sources={"reading": lambda: 1.0}),
            zone="A",
        )

    benchmark(register)


def test_bench_discovery_by_attribute(benchmark):
    app = make_app()
    for index in range(2000):
        app.bind_device(make_sensor(app, index))
    app.start()

    def query():
        return app.discover.devices("Sensor", zone="B")

    result = benchmark(query)
    assert len(result) == 500


def test_discovery_cost_vs_registry_size(table, benchmark):
    def run_series():
        rows = []
        costs = {}
        for size in (100, 1000, 4000):
            app = make_app()
            for index in range(size):
                app.bind_device(make_sensor(app, index))
            app.start()
            start = time.perf_counter()
            for __ in range(50):
                app.discover.devices("Sensor", zone="A")
            elapsed = (time.perf_counter() - start) / 50
            costs[size] = elapsed
            rows.append((size, f"{elapsed * 1e6:.0f} us"))
        return rows, costs

    rows, costs = benchmark.pedantic(run_series, rounds=1, iterations=1)
    table(
        "C4: attribute-filtered discovery vs registry size",
        ("bound entities", "query time"),
        rows,
    )
    # Index-seeded: cost tracks the number of *matches* (a quarter of the
    # fleet here), not the registry size.
    assert costs[4000] > costs[100]
