"""F4/F8/F10/F11 — the parking management pipeline.

Reproduced shape: one 10-minute gathering sweep (poll → group →
MapReduce → publish → panel updates) scales roughly linearly in sensor
count, and the full paper-scale application simulates a day quickly.
"""

import time

from repro.apps.parking import build_parking_app


def make_app(sensors_per_lot=40, lots=3):
    capacities = {f"L{i:02d}": sensors_per_lot for i in range(lots)}
    return build_parking_app(
        capacities=capacities, seed=3, environment_step_seconds=600.0
    )


def test_bench_single_sweep_paper_scale(benchmark):
    app = make_app(sensors_per_lot=40, lots=3)

    def sweep():
        app.advance(600)

    benchmark(sweep)
    assert all(panel.history for panel in app.entrance_panels.values())


def test_bench_single_sweep_city_scale(benchmark):
    app = make_app(sensors_per_lot=50, lots=40)

    def sweep():
        app.advance(600)

    benchmark(sweep)
    assert app.sensor_count == 2000


def test_bench_full_day_paper_scale(benchmark):
    def day():
        app = build_parking_app(
            seed=4, occupancy_window="6 hr", environment_step_seconds=600.0
        )
        app.advance(24 * 3600)
        return app

    app = benchmark.pedantic(day, rounds=3, iterations=1)
    assert app.messenger.messages  # daily occupancy reports went out


def test_sweep_scaling_series(table, benchmark):
    def run_series():
        rows = []
        timings = {}
        for sensors_per_lot, lots in [(25, 2), (50, 4), (50, 16), (50, 40)]:
            app = make_app(sensors_per_lot, lots)
            app.advance(600)  # warm
            start = time.perf_counter()
            for __ in range(5):
                app.advance(600)
            elapsed = (time.perf_counter() - start) / 5
            total = sensors_per_lot * lots
            timings[total] = elapsed
            rows.append(
                (total, lots, f"{elapsed * 1e3:.2f} ms",
                 f"{total / elapsed / 1e3:.0f}k readings/s")
            )
        return rows, timings

    rows, timings = benchmark.pedantic(run_series, rounds=1, iterations=1)
    table(
        "F4: gathering-sweep cost vs infrastructure size",
        ("sensors", "lots", "sweep time", "throughput"),
        rows,
    )
    sizes = sorted(timings)
    # Shape: roughly linear growth — 40x sensors within ~120x time.
    assert timings[sizes[-1]] < timings[sizes[0]] * 120
