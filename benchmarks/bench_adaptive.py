"""Adaptive tuning vs every fixed config under a flapping fault regime.

Reproduced shape: no single static configuration survives a fleet whose
failure mode *changes*.  The modeled gateway flips between two regimes —
**congestion** (every read carries +20 ms, so one batch RPC amortizes
the delay across the cohort) and **stragglers** (four members carry
+3 s, so a batch RPC inherits the worst member's delay — the
masked-straggler pathology pinned in ``tests/faults/test_chaos_batch.py``
— while scalar reads time the stragglers out, trip their breakers, and
fail fast behind stale-value delivery).  A low ``batch.min_column``
wins the first regime and loses the second; a high one the reverse.

The adaptive run closes the loop: ``TuningConfig(enabled=True)`` with a
custom cumulative-cost objective hill-climbs ``batch.min_column`` online
through ``Application.apply_config``, re-batching in congestion and
demoting to scalar when stragglers appear.

Headline assertion (the PR acceptance bar, gated in the CI
``tuning-smoke`` job and snapshotted in ``BENCH_009.json``): over the
full flapping schedule the adaptive run's p99 per-sweep modeled gather
latency beats **every** fixed ``min_column x failure_threshold`` config
in the grid, while delivering the same number of full-cohort payloads.

Everything is deterministic: the fault schedule is a pure function of
the sweep index, the cost model is analytic (no wall-clock sleeps), and
the controller runs with ``epsilon=0``.
"""

import json
import os

from repro.api import (
    Application,
    BatchConfig,
    Context,
    DeviceDriver,
    RuntimeConfig,
    SimulationClock,
    StalePolicy,
    SupervisionPolicy,
    TuningConfig,
    analyze,
)
from repro.errors import DeviceUnavailableError

DEVICES = 60
PERIOD = 60.0
SWEEPS = 2_000
STRAGGLERS = frozenset(f"s-{index:03d}" for index in range(4))

# The flapping schedule, in sweep indices (sweep k fires at k * PERIOD).
CONGESTION_WINDOWS = ((250, 450), (1_200, 1_400))
STRAGGLER_WINDOWS = ((650, 850), (1_550, 1_750))
CONGESTION_LATENCY_S = 0.02  # every member, absorbed well by a batch
STRAGGLER_LATENCY_S = 3.0  # four members, poisons a whole batch
READ_TIMEOUT_S = 0.1  # scalar reads slower than this time out

# Analytic cost model, in modeled milliseconds of gather latency.
SCALAR_MS = 2.0  # one supervised per-device round-trip
BATCH_BASE_MS = 30.0  # one cohort RPC (plus the worst member's delay)
TIMEOUT_MS = 100.0  # a scalar read that hits READ_TIMEOUT_S
# Breaker-open reads never reach the gateway: they fail fast into
# stale-value delivery and cost ~0 in the model.

# The fixed grid the adaptive controller must beat.
FIXED_MIN_COLUMNS = (2, 8, 128)
FIXED_THRESHOLDS = (1, 3)
ADAPTIVE_THRESHOLD = 1

ARTIFACT = os.environ.get("ADAPTIVE_JSON")

DESIGN = analyze(
    """
    device PresenceSensor {
        source presence as Boolean;
    }

    context Count as Integer {
        when periodic presence from PresenceSensor <1 min>
        always publish;
    }
    """
)


def injected_latency(sweep_index, entity_id):
    """Modeled extra delay for one member at one sweep — the 'plan'."""
    for start, end in CONGESTION_WINDOWS:
        if start <= sweep_index < end:
            return CONGESTION_LATENCY_S
    if entity_id in STRAGGLERS:
        for start, end in STRAGGLER_WINDOWS:
            if start <= sweep_index < end:
                return STRAGGLER_LATENCY_S
    return 0.0


class CountImpl(Context):
    def __init__(self):
        super().__init__()
        self.sizes = []

    def on_periodic_presence(self, readings, discover):
        self.sizes.append(len(readings))
        return len(readings)


class Gateway:
    """Shared fleet transport with an analytic latency/cost model.

    ``cost`` accumulates modeled milliseconds of gather latency; the
    adaptive run feeds it to the controller as the custom objective.
    """

    def __init__(self, clock):
        self.clock = clock
        self.truth = {}
        self.cost = 0.0
        self.scalar_reads = 0
        self.batch_reads = 0
        self.timeouts = 0

    def _sweep_index(self):
        return int(self.clock.now() // PERIOD + 0.5)

    def read_one(self, entity_id):
        index = self._sweep_index()
        delay = injected_latency(index, entity_id)
        if delay > READ_TIMEOUT_S:
            self.timeouts += 1
            self.cost += TIMEOUT_MS
            raise DeviceUnavailableError(
                f"modeled read timeout: '{entity_id}' at sweep {index}",
                entity_id=entity_id,
            )
        self.scalar_reads += 1
        self.cost += SCALAR_MS + delay * 1000.0
        return self.truth[entity_id]

    def read_many(self, entity_ids):
        index = self._sweep_index()
        worst = max(
            injected_latency(index, entity_id) for entity_id in entity_ids
        )
        self.batch_reads += 1
        self.cost += BATCH_BASE_MS + worst * 1000.0
        return [self.truth[entity_id] for entity_id in entity_ids]


class GatewayDriver(DeviceDriver):
    def __init__(self, gateway, entity_id):
        self.gateway = gateway
        self.entity_id = entity_id

    def read(self, source):
        return self.gateway.read_one(self.entity_id)

    def read_batch(self, entity_ids, source):
        return self.gateway.read_many(entity_ids)

    def batch_key(self, source):
        return self.gateway


def run_config(min_column, failure_threshold, adaptive=False):
    clock = SimulationClock()
    config = RuntimeConfig(
        clock=clock,
        batch=BatchConfig(enabled=True, min_column=min_column),
        supervision=SupervisionPolicy(
            max_retries=0,
            failure_threshold=failure_threshold,
            backoff_base_seconds=20_000.0,
            backoff_factor=1.0,
            backoff_max_seconds=20_000.0,
            jitter=0.0,
            quarantine_after=None,
        ),
        stale=StalePolicy(mode="last_known"),
        tuning=TuningConfig(
            enabled=True,
            interval_seconds=PERIOD,
            knobs=("batch.min_column",),
            objective="custom",
            epsilon=0.0,
        )
        if adaptive
        else TuningConfig(),
    )
    app = Application(DESIGN, config)
    count = app.implement("Count", CountImpl())
    gateway = Gateway(clock)
    for index in range(DEVICES):
        entity_id = f"s-{index:03d}"
        gateway.truth[entity_id] = index % 3 == 0
        app.create_device(
            "PresenceSensor", entity_id, GatewayDriver(gateway, entity_id)
        )
    if adaptive:
        app.tuner.set_objective(lambda: gateway.cost)
    app.start()
    sweep_costs = []
    previous = 0.0
    for __ in range(SWEEPS):
        app.advance(PERIOD)
        sweep_costs.append(gateway.cost - previous)
        previous = gateway.cost
    report = app.tuner.report() if adaptive else None
    final_min_column = app.config.batch.min_column
    app.stop()
    ordered = sorted(sweep_costs)
    return {
        "min_column": min_column,
        "failure_threshold": failure_threshold,
        "adaptive": adaptive,
        "p99_ms": round(
            ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))], 3
        ),
        "mean_ms": round(sum(sweep_costs) / len(sweep_costs), 3),
        "total_cost_ms": round(gateway.cost, 3),
        "timeouts": gateway.timeouts,
        "full_payloads": sum(1 for size in count.sizes if size == DEVICES),
        "sweeps": len(count.sizes),
        "final_min_column": final_min_column,
        "tuning": report,
    }


def run_grid():
    fixed = [
        run_config(min_column, threshold)
        for min_column in FIXED_MIN_COLUMNS
        for threshold in FIXED_THRESHOLDS
    ]
    adaptive = run_config(2, ADAPTIVE_THRESHOLD, adaptive=True)
    return fixed, adaptive


def test_adaptive_beats_every_fixed_config(table, benchmark):
    fixed, adaptive = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        (
            f"fixed mc={run['min_column']} ft={run['failure_threshold']}",
            f"{run['p99_ms']:.1f}",
            f"{run['mean_ms']:.1f}",
            run["timeouts"],
            run["full_payloads"],
        )
        for run in fixed
    ]
    rows.append(
        (
            "adaptive",
            f"{adaptive['p99_ms']:.1f}",
            f"{adaptive['mean_ms']:.1f}",
            adaptive["timeouts"],
            adaptive["full_payloads"],
        )
    )
    table(
        f"Adaptive vs fixed: {DEVICES} devices, {SWEEPS} sweeps, "
        f"flapping congestion/straggler schedule",
        ("config", "p99 ms", "mean ms", "timeouts", "full payloads"),
        rows,
    )
    stats = adaptive["tuning"]["stats"]
    best_fixed = min(fixed, key=lambda run: run["p99_ms"])
    if ARTIFACT:
        with open(ARTIFACT, "w") as handle:
            json.dump(
                {
                    "devices": DEVICES,
                    "sweeps": SWEEPS,
                    "adaptive_p99_ms": adaptive["p99_ms"],
                    "adaptive_mean_ms": adaptive["mean_ms"],
                    "best_fixed_p99_ms": best_fixed["p99_ms"],
                    "best_fixed": (
                        f"mc={best_fixed['min_column']} "
                        f"ft={best_fixed['failure_threshold']}"
                    ),
                    "adjustments": stats["adjustments"],
                    "rollbacks": stats["rollbacks"],
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    # Every sweep delivered a full cohort: stale-value delivery kept
    # payloads whole through breaker-open windows in every mode.
    for run in fixed + [adaptive]:
        assert run["sweeps"] == SWEEPS
        assert run["full_payloads"] == SWEEPS, run
    # The controller actually moved the knob, both ways.
    moved = stats["adjustments"]
    assert any(key.startswith("batch.min_column:up") for key in moved)
    assert any(key.startswith("batch.min_column:down") for key in moved)
    # Acceptance bar: adaptive beats EVERY fixed config on p99.
    for run in fixed:
        assert adaptive["p99_ms"] < run["p99_ms"], (
            f"adaptive p99 {adaptive['p99_ms']:.1f} ms did not beat "
            f"fixed mc={run['min_column']} ft={run['failure_threshold']} "
            f"({run['p99_ms']:.1f} ms)"
        )
