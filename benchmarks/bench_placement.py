"""Placement tier: edge-partitioned aggregation vs cloud-only gathering.

Reproduced shape: the fog-continuum argument — when sensor readings
must cross a wide-area uplink before aggregation, running map + map-side
combine at the edge ships per-group partial aggregates instead of raw
readings, cutting bytes-over-WAN and the modeled uplink completion time
of every gathered context.

Headline assertion (the PR acceptance bar, gated in the CI bench-smoke
``placement`` job): over a 1 000-device fleet spread across 20 edge
nodes with a WAN-latency edge→cloud hop, the edge split moves at least
5x fewer bytes over the WAN than the cloud-only path and beats its p99
modeled gathered-context uplink latency — while delivering identical
context payloads.
"""

import json
import os

from repro.api import (
    Application,
    CallableDriver,
    Context,
    HopProfile,
    NetworkConfig,
    PlacementConfig,
    RuntimeConfig,
    analyze,
)

DEVICES = 1_000
EDGE_NODES = 20
PERIOD = 600.0
SWEEPS = 3
WAN = HopProfile(latency=0.08, bandwidth=1_000_000.0)
ACCESS = HopProfile(latency=0.002)
MIN_BYTE_CUT = 5.0
ARTIFACT = os.environ.get("PLACEMENT_JSON")

LOTS = tuple(f"L{index:02d}" for index in range(EDGE_NODES))

DESIGN_TEMPLATE = """\
device PresenceSensor {{
    attribute parkingLot as LotEnum;
    source presence as Boolean;
}}
enumeration LotEnum {{ {lots} }}

context FreeCount as Integer{placement} {{
    when periodic presence from PresenceSensor <10 min>
    grouped by parkingLot
    with map as Boolean reduce as Integer
    always publish;
}}
"""


class FreeCountImpl(Context):
    """Associative count with a map-side combiner — the shape the edge
    split compresses hardest: one partial per (node, lot) per sweep."""

    def __init__(self):
        super().__init__()
        self.deliveries = []

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, 1)

    def combine(self, lot, values, collector):
        collector.emit_combine(lot, sum(values))

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, sum(values))

    def on_periodic_presence(self, by_lot, discover):
        self.deliveries.append(dict(by_lot))
        return sum(by_lot.values())


def build(edge):
    design = DESIGN_TEMPLATE.format(
        lots=", ".join(LOTS), placement=" at edge" if edge else ""
    )
    config = RuntimeConfig(
        network=NetworkConfig(hops={"access": ACCESS, "wan": WAN}),
        placement=PlacementConfig(enabled=True),
    )
    app = Application(analyze(design), config)
    free = app.implement("FreeCount", FreeCountImpl())
    for index in range(DEVICES):
        app.create_device(
            "PresenceSensor",
            f"s-{index:04d}",
            CallableDriver(
                sources={"presence": lambda i=index: i % 3 == 0}
            ),
            parkingLot=LOTS[index % EDGE_NODES],
        )
    app.start()
    return app, free


def run_mode(edge):
    """WAN bytes and per-sweep modeled uplink latency for one mode."""
    app, free = build(edge)
    topology = app.network
    latencies = []
    shipped = 0
    for __ in range(SWEEPS):
        app.advance(PERIOD)
        delta = app.stats["placement"]["wan_bytes"] - shipped
        shipped += delta
        # Modeled completion of this sweep's uplink: WAN propagation
        # plus the sweep's whole payload through the WAN bottleneck.
        latencies.append(topology.transit_time(("wan",), delta))
    latencies.sort()
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    stats = app.stats["placement"]
    app.stop()
    return {
        "wan_bytes": shipped,
        "p99_uplink_s": p99,
        "partials": stats["partials_sent"],
        "raw": stats["raw_readings"],
        "edge_nodes": stats["edge_nodes"],
        "deliveries": free.deliveries,
    }


def test_edge_split_cuts_wan_traffic(table, benchmark):
    def run_series():
        return run_mode(edge=False), run_mode(edge=True)

    cloud, edge = benchmark.pedantic(run_series, rounds=1, iterations=1)
    assert edge["deliveries"] == cloud["deliveries"]  # identical payloads
    assert edge["edge_nodes"] == EDGE_NODES
    byte_cut = cloud["wan_bytes"] / edge["wan_bytes"]
    rows = [
        (
            "cloud-only",
            cloud["raw"],
            cloud["wan_bytes"],
            f"{cloud['p99_uplink_s'] * 1000:.1f}",
            "1.0x",
        ),
        (
            "edge-split",
            edge["partials"],
            edge["wan_bytes"],
            f"{edge['p99_uplink_s'] * 1000:.1f}",
            f"{byte_cut:.1f}x",
        ),
    ]
    table(
        f"Placement: {DEVICES} devices, {EDGE_NODES} edge nodes, "
        f"WAN {WAN.latency * 1000:.0f} ms / "
        f"{WAN.bandwidth / 1e6:.0f} MB/s",
        ("mode", "wan msgs", "wan bytes", "p99 uplink ms", "byte cut"),
        rows,
    )
    if ARTIFACT:
        with open(ARTIFACT, "w") as handle:
            json.dump(
                {
                    "devices": DEVICES,
                    "edge_nodes": EDGE_NODES,
                    "byte_cut": round(byte_cut, 2),
                    "cloud_p99_uplink_s": round(cloud["p99_uplink_s"], 6),
                    "edge_p99_uplink_s": round(edge["p99_uplink_s"], 6),
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    assert byte_cut >= MIN_BYTE_CUT, (
        f"edge split cut WAN bytes only {byte_cut:.1f}x, below the "
        f"{MIN_BYTE_CUT:.0f}x acceptance bar"
    )
    assert edge["p99_uplink_s"] < cloud["p99_uplink_s"], (
        "edge split failed to beat the cloud-only p99 modeled uplink "
        "latency"
    )
