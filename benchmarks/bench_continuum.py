"""F1 — the small-to-large continuum (Figure 1).

One design, one runtime, infrastructure sizes spanning three orders of
magnitude.  Reproduced shape: simulation cost grows roughly linearly with
the number of bound sensors while the design and implementations stay
fixed; the home-scale application costs microseconds per event.
"""

import time

from repro.apps.cooker import build_cooker_app
from repro.apps.parking import build_parking_app

SCALES = {
    "home (3 entities)": None,  # cooker app
    "street (1 lot, 50 spaces)": {"A22": 50},
    "district (10 lots, 500 spaces)": {f"L{i}": 50 for i in range(10)},
    "city (50 lots, 2500 spaces)": {f"L{i}": 50 for i in range(50)},
}


def simulate_hour(capacities):
    app = build_parking_app(
        capacities=capacities, seed=1, environment_step_seconds=300.0
    )
    start = time.perf_counter()
    app.advance(3600)
    elapsed = time.perf_counter() - start
    return app, elapsed


def test_continuum_scaling(table, benchmark):
    def run_series():
        rows = []
        elapsed_by_size = {}
        cooker = build_cooker_app(threshold_seconds=600)
        start = time.perf_counter()
        cooker.advance(3600)
        home_elapsed = time.perf_counter() - start
        rows.append(
            ("home (3 entities)", 3, f"{home_elapsed * 1e3:.1f} ms",
             "cooker")
        )
        for label, capacities in SCALES.items():
            if capacities is None:
                continue
            app, elapsed = simulate_hour(capacities)
            sensors = app.sensor_count
            elapsed_by_size[sensors] = elapsed
            rows.append(
                (label, sensors, f"{elapsed * 1e3:.1f} ms", "parking")
            )
        return rows, elapsed_by_size

    rows, elapsed_by_size = benchmark.pedantic(
        run_series, rounds=1, iterations=1
    )
    table(
        "F1: one stack across the continuum (1 simulated hour)",
        ("scale", "sensors", "wall time", "design"),
        rows,
    )
    # Shape: the city costs more than the street, but the stack holds at
    # every scale (no blow-up beyond ~linear).
    assert elapsed_by_size[2500] > elapsed_by_size[50]
    assert elapsed_by_size[2500] < elapsed_by_size[50] * 500


def test_bench_home_scale_hour(benchmark):
    def run():
        app = build_cooker_app(threshold_seconds=600)
        app.advance(3600)
        return app

    app = benchmark(run)
    assert app.application.stats["context_activations"]["Alert"] == 3600


def test_bench_city_scale_sweep(benchmark):
    app = build_parking_app(
        capacities={f"L{i}": 50 for i in range(20)},
        seed=2,
        environment_step_seconds=600.0,
    )

    def sweep():
        app.advance(600)

    benchmark(sweep)
    assert app.application.stats["gather_sweeps"] > 0
