"""Shard scaling: single-process sweeps vs multi-process shard workers.

Reproduced shape: the paper's large-scale orchestration claim — the
same design scales from one process to a fleet of workers.  The fleet's
gateway costs a modeled ``service_time`` per device read
(:class:`~repro.simulation.sensors.GatewaySubstrate`; the sleep stands
in for radio time and releases the GIL/process exactly as real I/O
would).  Single-process, a 100k-device sweep pays the full fleet's
service time serially; with N shard workers each process pays only its
shard's, concurrently.

Headline assertion (the PR acceptance bar, gated in the CI
``shard-smoke`` job): 4 workers sweep the 100k-device fleet at least
2x faster than the single process, while the published context values
stay identical.
"""

import json
import os
import time

from repro.api import ShardConfig, ShardedRuntime, SimulatedFleetBootstrap

DEVICES = 100_000
SERVICE_TIME = 30e-6  # 30 us of modeled gateway time per device read
PERIOD = 60.0  # the bootstrap's ZoneLoad period
SWEEPS = 2
MIN_SPEEDUP_AT_4 = 2.0
ARTIFACT = os.environ.get("SHARD_SCALING_JSON")


def timed_run(workers):
    """Best-of wall time for one periodic sweep, plus published values."""
    bootstrap = SimulatedFleetBootstrap(
        count=DEVICES,
        seed=11,
        service_time=SERVICE_TIME,
        batch=True,  # columnar reads: one gateway call per shard
        shard=ShardConfig(enabled=workers > 1, workers=workers),
    )
    runtime = ShardedRuntime(bootstrap)
    published = []
    runtime.app.bus.subscribe(
        ("context", "ZoneLoad"),
        lambda event: published.append((event.value, event.timestamp)),
    )
    runtime.start()
    try:
        best = float("inf")
        for __ in range(SWEEPS):
            started = time.perf_counter()
            runtime.advance(PERIOD)
            best = min(best, time.perf_counter() - started)
        return best, published
    finally:
        runtime.stop()


def test_shard_workers_beat_single_process(table, benchmark):
    def run_series():
        serial_s, serial_values = timed_run(1)
        rows = [("single-process", 1, f"{serial_s * 1000:.0f}", "1.0x")]
        speedups = {}
        for workers in (2, 4):
            sharded_s, values = timed_run(workers)
            assert values == serial_values  # identical deliveries
            speedups[workers] = serial_s / sharded_s
            rows.append(
                (
                    "sharded",
                    workers,
                    f"{sharded_s * 1000:.0f}",
                    f"{speedups[workers]:.1f}x",
                )
            )
        return rows, speedups

    rows, speedups = benchmark.pedantic(run_series, rounds=1, iterations=1)
    table(
        f"Shard scaling: {DEVICES} devices, "
        f"{SERVICE_TIME * 1e6:.0f} us modeled gateway time per read",
        ("mode", "workers", "sweep ms", "speedup"),
        rows,
    )
    if ARTIFACT:
        with open(ARTIFACT, "w") as handle:
            json.dump(
                {
                    "devices": DEVICES,
                    "service_time_s": SERVICE_TIME,
                    "speedups": {
                        str(workers): round(value, 2)
                        for workers, value in speedups.items()
                    },
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    # Near-linear scaling: overlapping the modeled gateway time across
    # worker processes must at least halve the sweep at 4 workers.
    assert speedups[4] >= MIN_SPEEDUP_AT_4, (
        f"4-worker sweep speedup {speedups[4]:.2f}x fell below the "
        f"{MIN_SPEEDUP_AT_4:.1f}x acceptance bar"
    )
    assert speedups[4] > speedups[2] * 0.9  # adding workers keeps helping
