"""C3 — the three data-delivery models (§IV).

Same infrastructure, same data demand, three designs: event-driven push,
periodic gathering, and query-driven pull.  Reproduced shape (after the
WSN taxonomy the paper cites): event-driven cost tracks the *change*
rate, periodic cost tracks the *polling* rate times fleet size, and
query-driven pays only per consumer demand.
"""

import time

from repro.runtime.app import Application
from repro.runtime.component import Context
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

EVENT_DESIGN = """\
device Sensor { source reading as Float; }
context Sink as Float {
    when provided reading from Sensor
    maybe publish;
}
"""

PERIODIC_DESIGN = """\
device Sensor { source reading as Float; }
context Sink as Float {
    when periodic reading from Sensor <1 min>
    always publish;
}
"""

QUERY_DESIGN = """\
device Sensor { source reading as Float; }
context Sink as Float {
    when required;
}
"""


class EventSink(Context):
    def __init__(self):
        super().__init__()
        self.count = 0

    def on_reading_from_sensor(self, event, discover):
        self.count += 1
        return None


class PeriodicSink(Context):
    def __init__(self):
        super().__init__()
        self.count = 0

    def on_periodic_reading(self, readings, discover):
        self.count += len(readings)
        return float(len(readings))


class QuerySink(Context):
    def when_required(self, discover):
        values = [
            proxy.reading() for proxy in discover.devices("Sensor")
        ]
        return sum(values) / len(values) if values else 0.0


def build(design_text, sink, sensors):
    app = Application(analyze(design_text))
    app.implement("Sink", sink)
    instances = []
    for index in range(sensors):
        instances.append(
            app.create_device(
                "Sensor",
                f"s{index}",
                CallableDriver(sources={"reading": lambda: 1.0}),
            )
        )
    app.start()
    return app, instances


def test_delivery_model_comparison(table, benchmark):
    sensors = 200
    simulated_hour = 3600
    change_events_per_sensor = 6  # sparse changes

    def run_comparison():
        rows = []

        # Event-driven: each sensor pushes only when its value changes.
        app, instances = build(EVENT_DESIGN, EventSink(), sensors)
        start = time.perf_counter()
        for instance in instances:
            for __ in range(change_events_per_sensor):
                instance.publish("reading", 1.0)
        event_elapsed = time.perf_counter() - start
        event_deliveries = app.implementation("Sink").count
        rows.append(
            ("event-driven", event_deliveries,
             f"{event_elapsed * 1e3:.1f} ms", "tracks change rate")
        )

        # Periodic: the runtime polls everything every minute.
        app, __ = build(PERIODIC_DESIGN, PeriodicSink(), sensors)
        start = time.perf_counter()
        app.advance(simulated_hour)
        periodic_elapsed = time.perf_counter() - start
        periodic_deliveries = app.implementation("Sink").count
        rows.append(
            ("periodic <1 min>", periodic_deliveries,
             f"{periodic_elapsed * 1e3:.1f} ms", "tracks poll rate x fleet")
        )

        # Query-driven: one consumer pull per simulated hour.
        app, __ = build(QUERY_DESIGN, QuerySink(), sensors)
        start = time.perf_counter()
        app.query_context("Sink")
        query_elapsed = time.perf_counter() - start
        rows.append(
            ("query-driven", sensors, f"{query_elapsed * 1e3:.1f} ms",
             "tracks consumer demand")
        )
        return rows, event_deliveries, periodic_deliveries

    rows, event_deliveries, periodic_deliveries = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    table(
        "C3: delivery models, 200 sensors, 1 simulated hour",
        ("model", "readings delivered", "wall time", "cost driver"),
        rows,
    )
    # Shape: periodic moved the most data (60 polls x 200 sensors);
    # event-driven moved only the changes; a single query moved one sweep.
    assert periodic_deliveries == 60 * sensors
    assert event_deliveries == change_events_per_sensor * sensors
    assert periodic_deliveries > event_deliveries > sensors / 2


def test_bench_event_dispatch(benchmark):
    app, instances = build(EVENT_DESIGN, EventSink(), 1)

    def push():
        instances[0].publish("reading", 2.0)

    benchmark(push)


def test_bench_periodic_sweep(benchmark):
    app, __ = build(PERIODIC_DESIGN, PeriodicSink(), 500)

    def sweep():
        app.advance(60)

    benchmark(sweep)


def test_bench_query_pull(benchmark):
    app, __ = build(QUERY_DESIGN, QuerySink(), 500)
    result = benchmark(app.query_context, "Sink")
    assert result == 1.0
