"""C3 — the three data-delivery models (§IV).

Same infrastructure, same data demand, three designs: event-driven push,
periodic gathering, and query-driven pull.  Reproduced shape (after the
WSN taxonomy the paper cites): event-driven cost tracks the *change*
rate, periodic cost tracks the *polling* rate times fleet size, and
query-driven pays only per consumer demand.
"""

import time

from repro.mapreduce.api import MapReduce
from repro.runtime.app import Application
from repro.runtime.config import RuntimeConfig
from repro.runtime.component import Context
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

EVENT_DESIGN = """\
device Sensor { source reading as Float; }
context Sink as Float {
    when provided reading from Sensor
    maybe publish;
}
"""

PERIODIC_DESIGN = """\
device Sensor { source reading as Float; }
context Sink as Float {
    when periodic reading from Sensor <1 min>
    always publish;
}
"""

QUERY_DESIGN = """\
device Sensor { source reading as Float; }
context Sink as Float {
    when required;
}
"""


class EventSink(Context):
    def __init__(self):
        super().__init__()
        self.count = 0

    def on_reading_from_sensor(self, event, discover):
        self.count += 1
        return None


class PeriodicSink(Context):
    def __init__(self):
        super().__init__()
        self.count = 0

    def on_periodic_reading(self, readings, discover):
        self.count += len(readings)
        return float(len(readings))


class QuerySink(Context):
    def when_required(self, discover):
        values = [
            proxy.reading() for proxy in discover.devices("Sensor")
        ]
        return sum(values) / len(values) if values else 0.0


def build(design_text, sink, sensors):
    app = Application(analyze(design_text))
    app.implement("Sink", sink)
    instances = []
    for index in range(sensors):
        instances.append(
            app.create_device(
                "Sensor",
                f"s{index}",
                CallableDriver(sources={"reading": lambda: 1.0}),
            )
        )
    app.start()
    return app, instances


def test_delivery_model_comparison(table, benchmark):
    sensors = 200
    simulated_hour = 3600
    change_events_per_sensor = 6  # sparse changes

    def run_comparison():
        rows = []

        # Event-driven: each sensor pushes only when its value changes.
        app, instances = build(EVENT_DESIGN, EventSink(), sensors)
        start = time.perf_counter()
        for instance in instances:
            for __ in range(change_events_per_sensor):
                instance.publish("reading", 1.0)
        event_elapsed = time.perf_counter() - start
        event_deliveries = app.implementation("Sink").count
        rows.append(
            ("event-driven", event_deliveries,
             f"{event_elapsed * 1e3:.1f} ms", "tracks change rate")
        )

        # Periodic: the runtime polls everything every minute.
        app, __ = build(PERIODIC_DESIGN, PeriodicSink(), sensors)
        start = time.perf_counter()
        app.advance(simulated_hour)
        periodic_elapsed = time.perf_counter() - start
        periodic_deliveries = app.implementation("Sink").count
        rows.append(
            ("periodic <1 min>", periodic_deliveries,
             f"{periodic_elapsed * 1e3:.1f} ms", "tracks poll rate x fleet")
        )

        # Query-driven: one consumer pull per simulated hour.
        app, __ = build(QUERY_DESIGN, QuerySink(), sensors)
        start = time.perf_counter()
        app.query_context("Sink")
        query_elapsed = time.perf_counter() - start
        rows.append(
            ("query-driven", sensors, f"{query_elapsed * 1e3:.1f} ms",
             "tracks consumer demand")
        )
        return rows, event_deliveries, periodic_deliveries

    rows, event_deliveries, periodic_deliveries = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    table(
        "C3: delivery models, 200 sensors, 1 simulated hour",
        ("model", "readings delivered", "wall time", "cost driver"),
        rows,
    )
    # Shape: periodic moved the most data (60 polls x 200 sensors);
    # event-driven moved only the changes; a single query moved one sweep.
    assert periodic_deliveries == 60 * sensors
    assert event_deliveries == change_events_per_sensor * sensors
    assert periodic_deliveries > event_deliveries > sensors / 2


# ---------------------------------------------------------------------------
# C3b — windowed aggregation: buffered vs streaming (incremental) windows.
# The paper's AverageOccupancy gathers every 10 minutes but publishes once
# per 24-hour window; buffering the window costs O(readings), the
# streaming fast path O(groups).
# ---------------------------------------------------------------------------

RAW_WINDOW_DESIGN = """\
device Sensor {{
    attribute zone as ZoneEnum;
    source free as Boolean;
}}
enumeration ZoneEnum {{ {zones} }}
context Sink as Integer {{
    when periodic free from Sensor <10 min>
    grouped by zone every <24 hr>
    always publish;
}}
"""

MR_WINDOW_DESIGN = """\
device Sensor {{
    attribute zone as ZoneEnum;
    source free as Boolean;
}}
enumeration ZoneEnum {{ {zones} }}
context Sink as Integer {{
    when periodic free from Sensor <10 min>
    grouped by zone every <24 hr>
    with map as Integer reduce as Integer
    always publish;
}}
"""


class RawWindowSink(Context):
    """Buffered raw readings: count free observations over the window."""

    def on_periodic_free(self, window_by_zone, discover):
        return sum(
            sum(1 for free in readings if free)
            for readings in window_by_zone.values()
        )


class MapReduceWindowSink(Context, MapReduce):
    """Same aggregate through map/combine/reduce; the handler tolerates
    both the buffered list and the streamed folded value."""

    def map(self, zone, free, collector):
        if free:
            collector.emit_map(zone, 1)

    def combine(self, zone, counts, collector):
        collector.emit_combine(zone, sum(counts))

    def reduce(self, zone, counts, collector):
        collector.emit_reduce(zone, sum(counts))

    def on_periodic_free(self, free_by_zone, discover):
        return sum(
            sum(value) if isinstance(value, list) else value
            for value in free_by_zone.values()
        )


def build_windowed(design_template, sink, sensors, zones, streaming):
    zone_names = [f"Z{i}" for i in range(zones)]
    design = design_template.format(zones=", ".join(zone_names))
    app = Application(
        analyze(design), RuntimeConfig(streaming_windows=streaming)
    )
    app.implement("Sink", sink)
    published = []
    app.bus.subscribe(
        ("context", "Sink"), lambda event: published.append(event.value)
    )
    for index in range(sensors):
        app.create_device(
            "Sensor",
            f"s{index}",
            CallableDriver(sources={"free": lambda i=index: i % 3 == 0}),
            zone=zone_names[index % zones],
        )
    app.start()
    return app, published


def test_windowed_aggregation_models(table, benchmark):
    sensors, zones = 200, 8
    day = 24 * 3600
    sweeps = 144  # 24 hr / 10 min

    def run_comparison():
        rows = []
        results = {}
        for label, template, sink, streaming in (
            ("raw buffered", RAW_WINDOW_DESIGN, RawWindowSink(), False),
            ("mapreduce buffered", MR_WINDOW_DESIGN, MapReduceWindowSink(),
             False),
            ("mapreduce streaming", MR_WINDOW_DESIGN, MapReduceWindowSink(),
             True),
        ):
            app, published = build_windowed(
                template, sink, sensors, zones, streaming
            )
            app.bus.reset_stats()
            start = time.perf_counter()
            app.advance(day)
            elapsed = time.perf_counter() - start
            window = app.stats["windows"]["Sink"]
            results[label] = (published, window)
            rows.append(
                (
                    label,
                    window["mode"],
                    window["peak_buffered_values"],
                    published[0] if published else "-",
                    f"{elapsed * 1e3:.0f} ms",
                    app.bus.stats()["published"],
                )
            )
        return rows, results

    rows, results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table(
        f"C3b: 24-hr window over 10-min sweeps, {sensors} sensors, "
        f"{zones} zones",
        ("window mode", "accumulator", "peak buffered", "published total",
         "wall time", "bus publishes"),
        rows,
    )
    raw_published, raw_window = results["raw buffered"]
    buffered_published, buffered_window = results["mapreduce buffered"]
    streaming_published, streaming_window = results["mapreduce streaming"]
    # Identical published values across all three pipelines.
    assert raw_published == buffered_published == streaming_published
    assert len(streaming_published) == 1  # one 24-hour publication
    # Peak window state: O(readings) raw, O(sweeps x groups) buffered
    # MapReduce, O(groups) streaming.
    assert raw_window["peak_buffered_values"] == sensors * sweeps
    assert buffered_window["peak_buffered_values"] == zones * sweeps
    assert streaming_window["peak_buffered_values"] == zones


def test_streaming_window_state_constant_in_fleet_size(table, benchmark):
    """Doubling the fleet must not grow streaming window state."""
    zones, day = 8, 24 * 3600

    def run_scaling():
        peaks = {}
        for sensors in (100, 400):
            app, __ = build_windowed(
                MR_WINDOW_DESIGN, MapReduceWindowSink(), sensors, zones, True
            )
            app.advance(day)
            peaks[sensors] = (
                app.stats["windows"]["Sink"]["peak_buffered_values"]
            )
        return peaks

    peaks = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    table(
        "C3b2: streaming window state vs fleet size (8 zones)",
        ("sensors", "peak buffered values"),
        [(sensors, peak) for sensors, peak in sorted(peaks.items())],
    )
    assert peaks[100] == peaks[400] == zones


def test_bench_event_dispatch(benchmark):
    app, instances = build(EVENT_DESIGN, EventSink(), 1)

    def push():
        instances[0].publish("reading", 2.0)

    benchmark(push)


def test_bench_periodic_sweep(benchmark):
    app, __ = build(PERIODIC_DESIGN, PeriodicSink(), 500)

    def sweep():
        app.advance(60)

    benchmark(sweep)


def test_bench_query_pull(benchmark):
    app, __ = build(QUERY_DESIGN, QuerySink(), 500)
    result = benchmark(app.query_context, "Sink")
    assert result == 1.0
