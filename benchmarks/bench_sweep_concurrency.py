"""Sweep concurrency: serial loop vs bounded thread-pool fan-out.

Reproduced shape: with per-read latency that models a real transport
(>= 1 ms per sensor poll), sweep wall time grows linearly with fleet
size in the serial loop and divides by the worker count in threaded
mode.  The headline assertion is the PR's acceptance bar: 8 workers
sweep the parking fleet at least 3x faster than the serial loop, while
both modes return byte-identical result streams.
"""

import time

from repro.apps.parking import build_parking_app
from repro.runtime.sweep import SweepConfig, SweepEngine

READ_LATENCY = 0.0015  # seconds; models a LAN round-trip per sensor
FLEET = {"A22": 32, "B16": 24, "D6": 24}  # 80 presence sensors
ROUNDS = 3


def build_fleet():
    app = build_parking_app(capacities=FLEET, seed=7)
    return app.application


def slow_read(instance):
    """A supervised-read stand-in: sleep releases the GIL, as a socket
    recv would, so the fan-out can actually overlap reads."""
    time.sleep(READ_LATENCY)
    return instance.entity_id


def timed_sweeps(application, config):
    engine = SweepEngine(application.registry, application.clock, config)
    try:
        best = float("inf")
        payload = None
        for _ in range(ROUNDS):
            started = time.perf_counter()
            results = engine.sweep("PresenceSensor", slow_read)
            best = min(best, time.perf_counter() - started)
            payload = [entity_id for __, entity_id in results]
        return best, payload
    finally:
        engine.close()


def test_threaded_sweep_beats_serial(table, benchmark):
    application = build_fleet()

    def run_series():
        rows = []
        serial_s, serial_payload = timed_sweeps(
            application, SweepConfig(mode="serial")
        )
        rows.append(("serial", 1, f"{serial_s * 1000:.1f}", "1.0x"))
        speedups = {}
        for workers in (2, 4, 8):
            threaded_s, payload = timed_sweeps(
                application,
                SweepConfig(
                    mode="threaded", workers=workers, batch_size=8
                ),
            )
            assert payload == serial_payload  # identical merge order
            speedups[workers] = serial_s / threaded_s
            rows.append(
                (
                    "threaded",
                    workers,
                    f"{threaded_s * 1000:.1f}",
                    f"{speedups[workers]:.1f}x",
                )
            )
        return rows, speedups

    rows, speedups = benchmark.pedantic(run_series, rounds=1, iterations=1)
    table(
        "Sweep concurrency: 80-sensor parking fleet, "
        f"{READ_LATENCY * 1000:.1f} ms per read",
        ("mode", "workers", "sweep ms", "speedup"),
        rows,
    )
    # Acceptance bar: 8 workers hide at least 3x of the serial latency,
    # and adding workers never makes the sweep slower than 2 workers.
    assert speedups[8] >= 3.0
    assert speedups[8] >= speedups[2] * 0.9


def test_auto_mode_stays_serial_under_simulation(table, benchmark):
    """The determinism guarantee costs nothing: auto mode on a
    simulation clock is the plain loop, with no pool ever created."""
    application = build_fleet()

    def run_auto():
        engine = SweepEngine(
            application.registry, application.clock, SweepConfig()
        )
        started = time.perf_counter()
        results = engine.sweep("PresenceSensor", lambda i: i.entity_id)
        elapsed = time.perf_counter() - started
        stats = engine.stats()
        engine.close()
        return elapsed, len(results), stats

    elapsed, read_count, stats = benchmark.pedantic(
        run_auto, rounds=1, iterations=1
    )
    table(
        "Auto mode under SimulationClock (no per-read latency)",
        ("effective mode", "reads", "sweep ms"),
        (("serial", read_count, f"{elapsed * 1000:.2f}"),),
    )
    assert stats["serial_sweeps"] == 1
    assert stats["threaded_sweeps"] == 0
    assert read_count == sum(FLEET.values())
