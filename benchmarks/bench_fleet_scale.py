"""Fleet scale: the million-device shard hot path.

Reproduced shape: the paper's large-scale orchestration claim pushed to
fleet size — one declared design, a million bound devices, and the
sweep/publish pipeline surviving the jump through the PR's three
mechanisms working together:

* **delta wire protocol** — workers track per-position payload digests,
  so steady-state sweep replies carry only the changed rows plus one
  quiescent count instead of a million pickled tuples;
* **persistent columnar cohorts + partition memo** — the per-sweep
  Python cost (cohort formation, shard partitioning) is compiled once
  per registry version instead of re-derived per sweep;
* **overlapped gateway time** — each worker process sleeps only its
  shard's modeled service time, concurrently.

Two headline gates (the PR acceptance bar, run by the CI
``fleet-smoke`` job):

* 4 shard workers sweep the 1M-device fleet at least **3x** faster
  than the single process;
* the columnar delta encoding moves at least **5x** fewer bytes over
  the worker pipes than the row-tuple wire format it replaces (the
  pre-delta PR 7 encoding, still selectable as
  ``ShardConfig(wire_format="rows")``).

Published context values must be identical across every mode — the
wire format is an encoding, never a semantics change.
"""

import json
import os
import time

from repro.api import ShardConfig, ShardedRuntime
from repro.runtime.shard import FleetScaleBootstrap

DEVICES = 1_000_000
SERVICE_TIME = 50e-6  # modeled gateway time per device read
ACTIVITY = 0.02  # P(device active) per tick: ~4% of rows flip per sweep
PERIOD = 60.0  # the bootstrap's ZoneLevels period
SEED = 11
BYTE_SWEEPS = 4
MIN_SPEEDUP_AT_4 = 3.0
MIN_BYTE_CUT = 5.0
ARTIFACT = os.environ.get("FLEET_SCALE_JSON")


def _runtime(shard, service_time):
    bootstrap = FleetScaleBootstrap(
        count=DEVICES,
        seed=SEED,
        service_time=service_time,
        activity=ACTIVITY,
        shard=shard,
    )
    runtime = ShardedRuntime(bootstrap)
    published = []
    runtime.app.bus.subscribe(
        ("context", "ZoneLevels"),
        lambda event: published.append((event.value, event.timestamp)),
    )
    return runtime.start(), published


def timed_serial():
    """Wall time of one single-process sweep (modeled gateway time paid
    serially across the whole fleet)."""
    runtime, published = _runtime(ShardConfig(enabled=False), SERVICE_TIME)
    try:
        started = time.perf_counter()
        runtime.advance(PERIOD)
        return time.perf_counter() - started, published
    finally:
        runtime.stop()


def timed_sharded(workers):
    """Best-of-two sharded sweeps: the first pays the delta
    registration epoch, the second is the steady state this benchmark
    claims."""
    runtime, published = _runtime(
        ShardConfig(enabled=True, workers=workers), SERVICE_TIME
    )
    try:
        best = float("inf")
        for __ in range(2):
            started = time.perf_counter()
            runtime.advance(PERIOD)
            best = min(best, time.perf_counter() - started)
        return best, published
    finally:
        runtime.stop()


def wire_bytes(wire_format, delta_sync):
    """Bytes over the worker pipes for BYTE_SWEEPS sweeps at zero
    service time (byte counts are independent of modeled latency)."""
    runtime, published = _runtime(
        ShardConfig(
            enabled=True,
            workers=4,
            wire_format=wire_format,
            delta_sync=delta_sync,
        ),
        0.0,
    )
    try:
        runtime.advance(BYTE_SWEEPS * PERIOD)
        stats = runtime.stats()
        return {
            "bytes": stats["router"]["wire_bytes"],
            "delta_rows": stats["delta_rows"],
            "quiescent_rows": stats["quiescent_rows"],
            "published": published,
        }
    finally:
        runtime.stop()


def test_fleet_scale_delta_wire_path(table, benchmark):
    def run_series():
        rows = wire_bytes("rows", False)
        delta = wire_bytes("columnar", True)
        assert delta["published"] == rows["published"]
        byte_cut = rows["bytes"] / delta["bytes"]

        serial_s, serial_values = timed_serial()
        sharded_s, sharded_values = timed_sharded(4)
        assert sharded_values[: len(serial_values)] == serial_values
        speedup = serial_s / sharded_s
        return {
            "serial_s": serial_s,
            "sharded_s": sharded_s,
            "speedup": speedup,
            "rows_bytes": rows["bytes"],
            "delta_bytes": delta["bytes"],
            "byte_cut": byte_cut,
            "delta_rows": delta["delta_rows"],
            "quiescent_rows": delta["quiescent_rows"],
        }

    result = benchmark.pedantic(run_series, rounds=1, iterations=1)
    table(
        f"Fleet scale: {DEVICES} devices, 4 workers, "
        f"{SERVICE_TIME * 1e6:.0f} us modeled gateway time per read",
        ("measure", "value"),
        [
            ("serial sweep", f"{result['serial_s']:.1f} s"),
            ("sharded sweep", f"{result['sharded_s']:.1f} s"),
            ("speedup", f"{result['speedup']:.2f}x"),
            (
                "rows wire",
                f"{result['rows_bytes'] / 1e6:.1f} MB / {BYTE_SWEEPS} sweeps",
            ),
            (
                "delta wire",
                f"{result['delta_bytes'] / 1e6:.1f} MB / {BYTE_SWEEPS} sweeps",
            ),
            ("byte cut", f"{result['byte_cut']:.1f}x"),
            ("delta rows", result["delta_rows"]),
            ("quiescent rows", result["quiescent_rows"]),
        ],
    )
    if ARTIFACT:
        with open(ARTIFACT, "w") as handle:
            json.dump(
                {
                    "devices": DEVICES,
                    "service_time_s": SERVICE_TIME,
                    "activity": ACTIVITY,
                    "speedup_at_4": round(result["speedup"], 2),
                    "rows_bytes": result["rows_bytes"],
                    "delta_bytes": result["delta_bytes"],
                    "byte_cut": round(result["byte_cut"], 2),
                    "delta_rows": result["delta_rows"],
                    "quiescent_rows": result["quiescent_rows"],
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    assert result["speedup"] >= MIN_SPEEDUP_AT_4, (
        f"4-worker fleet sweep speedup {result['speedup']:.2f}x fell "
        f"below the {MIN_SPEEDUP_AT_4:.1f}x acceptance bar"
    )
    assert result["byte_cut"] >= MIN_BYTE_CUT, (
        f"delta wire byte cut {result['byte_cut']:.1f}x fell below the "
        f"{MIN_BYTE_CUT:.1f}x acceptance bar"
    )
