"""F3 — the cooker monitoring functional chains (Figure 3).

Reproduced shape: both chains execute end to end; per-event dispatch cost
through the full SCC chain (source → context → controller → action) is
small and constant.
"""

from repro.apps.cooker import build_cooker_app


def test_bench_alert_chain_per_tick(benchmark):
    """Clock tick → Alert (with cooker query) per-event cost."""
    app = build_cooker_app(threshold_seconds=10 ** 9)
    app.environment.set_cooker(True)
    instance = app.application.registry.get("wall-clock")

    tick = iter(range(10 ** 9))

    def fire():
        instance.publish("tickSecond", next(tick))

    benchmark(fire)
    assert app.application.stats["context_activations"]["Alert"] > 0


def test_bench_full_notify_chain(benchmark):
    """Threshold crossing through Notify to the prompter."""
    app = build_cooker_app(threshold_seconds=1, renotify_seconds=1)
    app.environment.set_cooker(True)
    instance = app.application.registry.get("wall-clock")
    tick = iter(range(10 ** 9))

    def fire():
        instance.publish("tickSecond", next(tick))

    benchmark(fire)
    assert app.prompter_driver.displayed


def test_bench_turn_off_chain(benchmark):
    """Answer → RemoteTurnOff → TurnOff → Cooker.off."""
    app = build_cooker_app(threshold_seconds=1)
    app.environment.set_cooker(True)
    app.advance(2)
    prompter = app.prompter_driver

    def answer_cycle():
        app.environment.set_cooker(True)
        prompter.answer("yes", question_id="q1")

    benchmark(answer_cycle)
    assert not app.cooker_on
    assert app.turn_off.turn_offs > 0


def test_chain_latency_report(table, benchmark):
    """Deterministic single-shot latency of both chains in virtual time:
    the alert fires exactly at the threshold, and actuation follows the
    answer instantly (synchronous dispatch)."""

    def run_scenario():
        app = build_cooker_app(threshold_seconds=120)
        app.environment.set_cooker(True)
        app.advance(119)
        before = len(app.prompter_driver.displayed)
        app.advance(1)
        fired = len(app.prompter_driver.displayed) == before + 1
        app.prompter_driver.answer("yes")
        return app, fired

    app, fired_at_threshold = benchmark.pedantic(
        run_scenario, rounds=1, iterations=1
    )
    table(
        "F3: functional chain behaviour",
        ("chain", "observed"),
        [
            ("Clock->Alert->Notify->TVPrompter",
             "alert exactly at threshold" if fired_at_threshold else "late"),
            ("TVPrompter->RemoteTurnOff->TurnOff->Cooker",
             "cooker off" if not app.cooker_on else "cooker still on"),
        ],
    )
    assert fired_at_threshold
    assert not app.cooker_on
