"""Query-driven fast path: freshness-aware read cache vs raw reads.

Reproduced shape: query-driven delivery re-reads the fleet far more
often than the physical quantity changes, so repeated pulls within one
freshness window should collapse to a single driver round-trip per
sensor.  The headline assertion is the PR's acceptance bar: with
~1.5 ms per driver read, 8 query bursts over an 80-sensor fleet run at
least 5x faster with the cache enabled than without, returning equal
payloads.  A hypothesis property pins semantic equivalence: under
actuation-driven invalidation the cached application answers every
query exactly like the uncached one, and with the cache disabled the
driver sees exactly one read per sensor per burst (byte-identity to
the pre-cache runtime).
"""

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Application,
    CacheConfig,
    CallableDriver,
    Context,
    RuntimeConfig,
    SimulationClock,
    analyze,
)

READ_LATENCY = 0.0015  # seconds; models a LAN round-trip per sensor
FLEET = {"A22": 32, "B16": 24, "D6": 24}  # 80 presence sensors
BURSTS = 8

DESIGN = analyze(
    """
    device PresenceSensor {
        attribute parkingLot as ParkingLotEnum;
        source presence as Boolean;
        action Calibrate;
    }

    enumeration ParkingLotEnum { A22, B16, D6 }

    context FleetSnapshot as Boolean[] {
        when required;
    }
    """
)


class FleetSnapshotContext(Context):
    """Query-driven pull of every presence sensor's current reading."""

    def when_required(self, discover):
        return [
            proxy.presence()
            for proxy in discover.devices("PresenceSensor")
        ]


class SensorState:
    """Mutable ground truth per sensor, observable call count included."""

    def __init__(self):
        self.occupied = False
        self.reads = 0

    def read(self):
        self.reads += 1
        return self.occupied

    def slow_read(self):
        self.reads += 1
        time.sleep(READ_LATENCY)
        return self.occupied


def build_app(cache, slow=False):
    clock = SimulationClock()
    app = Application(DESIGN, RuntimeConfig(clock=clock, cache=cache))
    app.implement("FleetSnapshot", FleetSnapshotContext)
    states = []
    for lot, count in sorted(FLEET.items()):
        for i in range(count):
            state = SensorState()
            states.append(state)
            driver = CallableDriver(
                sources={
                    "presence": state.slow_read if slow else state.read
                },
                actions={"Calibrate": lambda s=state: setattr(
                    s, "occupied", not s.occupied
                )},
            )
            app.create_device(
                "PresenceSensor",
                f"sensor-{lot}-{i}",
                driver,
                parkingLot=lot,
            )
    app.start()
    return app, clock, states


def timed_bursts(app):
    started = time.perf_counter()
    payloads = [app.query_context("FleetSnapshot") for _ in range(BURSTS)]
    return time.perf_counter() - started, payloads


def test_cached_queries_beat_uncached(table, benchmark):
    def run_series():
        rows = []
        timings = {}
        payloads = {}
        modes = (
            ("off", CacheConfig()),
            (
                "read cache",
                CacheConfig(
                    enabled=True, ttl_seconds=60.0, memoize_contexts=False
                ),
            ),
            ("read cache + memo", CacheConfig(enabled=True, ttl_seconds=60.0)),
        )
        for label, cache in modes:
            app, __, states = build_app(cache, slow=True)
            elapsed, bursts = timed_bursts(app)
            timings[label] = elapsed
            payloads[label] = bursts
            reads = sum(state.reads for state in states)
            rows.append(
                (
                    label,
                    reads,
                    f"{elapsed * 1000:.1f}",
                    f"{timings['off'] / elapsed:.1f}x",
                )
            )
        return rows, timings, payloads

    rows, timings, payloads = benchmark.pedantic(
        run_series, rounds=1, iterations=1
    )
    table(
        f"Query cache: {BURSTS} bursts over an 80-sensor fleet, "
        f"{READ_LATENCY * 1000:.1f} ms per read",
        ("mode", "driver reads", "total ms", "speedup"),
        rows,
    )
    # All modes answer every burst identically within the window.
    assert payloads["read cache"] == payloads["off"]
    assert payloads["read cache + memo"] == payloads["off"]
    # Acceptance bar: the cache collapses 8 bursts to ~1 fleet read.
    assert timings["off"] / timings["read cache"] >= 5.0
    assert timings["read cache + memo"] <= timings["read cache"] * 1.5


OPS = st.lists(
    st.one_of(
        st.just(("query",)),
        st.tuples(st.just("act"), st.integers(0, sum(FLEET.values()) - 1)),
        st.tuples(st.just("advance"), st.floats(0.1, 120.0)),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=25, deadline=None)
@given(ops=OPS)
def test_cache_on_equals_cache_off(ops):
    """Semantic pin: with every state change flowing through an
    actuation (which invalidates), the cached application answers every
    query exactly like the uncached one — and the uncached application
    performs exactly one driver read per sensor per query, the
    pre-cache behaviour."""
    cached_app, cached_clock, cached_states = build_app(
        CacheConfig(enabled=True, ttl_seconds=60.0)
    )
    plain_app, plain_clock, plain_states = build_app(CacheConfig())
    assert plain_app.read_cache is None
    sensor_ids = sorted(
        instance.entity_id
        for instance in plain_app.registry.instances_of("PresenceSensor")
    )
    queries = 0
    for op in ops:
        if op[0] == "query":
            queries += 1
            assert cached_app.query_context(
                "FleetSnapshot"
            ) == plain_app.query_context("FleetSnapshot")
        elif op[0] == "act":
            entity_id = sensor_ids[op[1]]
            for app in (cached_app, plain_app):
                app.discover.device(entity_id).calibrate()
        else:
            cached_clock.advance(op[1])
            plain_clock.advance(op[1])
    plain_reads = sum(state.reads for state in plain_states)
    assert plain_reads == queries * sum(FLEET.values())
    assert sum(state.reads for state in cached_states) <= plain_reads
