"""Columnar batch reads: per-device polls vs one round-trip per cohort.

Reproduced shape: large-scale orchestration spends its sweep budget on
per-device round-trips, so a fleet gateway that answers one RPC for a
whole shard should collapse a sweep's cost from O(devices) to
O(cohorts).  The headline assertion is the PR's acceptance bar: with
~1.5 ms per round-trip, the batched sweep over an 80-sensor fleet runs
at least 5x faster than the scalar sweep while delivering identical
grouped payloads.  A second test scales the same pipeline to 10,000
devices on a zero-latency substrate and checks both the modeled
round-trip reduction (>= 10x at gateway cohorts) and that the batch
machinery's bookkeeping overhead stays within bounds of the scalar
loop it replaces.
"""

import time

from repro.api import (
    Application,
    BatchConfig,
    Context,
    DeviceDriver,
    RuntimeConfig,
    SimulationClock,
    SweepConfig,
    analyze,
)
from repro.simulation.sensors import FleetSubstrate

READ_LATENCY = 0.0015  # seconds; models a LAN round-trip per poll
FLEET = {"A22": 32, "B16": 24, "D6": 24}  # 80 presence sensors
PERIOD = 600.0

DESIGN = analyze(
    """
    device PresenceSensor {
        attribute parkingLot as ParkingLotEnum;
        source presence as Boolean;
    }

    enumeration ParkingLotEnum { A22, B16, D6 }

    context FreeCount as Integer {
        when periodic presence from PresenceSensor <10 min>
        grouped by parkingLot
        with map as Boolean reduce as Integer
        always publish;
    }
    """
)


class FreeCountImpl(Context):
    def __init__(self):
        super().__init__()
        self.deliveries = []

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, True)

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, len(values))

    def on_periodic_presence(self, by_lot, discover):
        self.deliveries.append(dict(by_lot))
        return sum(by_lot.values())


class Gateway:
    """Shared transport behind a fleet of sensors.

    One :meth:`read_one` or :meth:`read_many` call is one round-trip;
    ``slow`` adds the modeled latency per round-trip (a column costs
    the same wire time as a single poll — that is the whole point).
    """

    def __init__(self, slow=False):
        self.truth = {}
        self.slow = slow
        self.scalar_round_trips = 0
        self.batch_round_trips = 0

    @property
    def round_trips(self):
        return self.scalar_round_trips + self.batch_round_trips

    def read_one(self, entity_id):
        self.scalar_round_trips += 1
        if self.slow:
            time.sleep(READ_LATENCY)
        return self.truth[entity_id]

    def read_many(self, entity_ids):
        self.batch_round_trips += 1
        if self.slow:
            time.sleep(READ_LATENCY)
        return [self.truth[entity_id] for entity_id in entity_ids]


class GatewayDriver(DeviceDriver):
    """Per-device driver that answers through the shared gateway."""

    def __init__(self, gateway, entity_id):
        self.gateway = gateway
        self.entity_id = entity_id

    def read(self, source):
        return self.gateway.read_one(self.entity_id)

    def read_batch(self, entity_ids, source):
        return self.gateway.read_many(entity_ids)

    def batch_key(self, source):
        return self.gateway


def build_app(batch, slow=False, sweep=None, fleet=FLEET):
    clock = SimulationClock()
    config = RuntimeConfig(
        clock=clock,
        batch=batch,
        sweep=sweep if sweep is not None else SweepConfig(),
    )
    app = Application(DESIGN, config)
    free = app.implement("FreeCount", FreeCountImpl())
    gateway = Gateway(slow=slow)
    index = 0
    for lot, count in sorted(fleet.items()):
        for __ in range(count):
            entity_id = f"sensor-{lot}-{index}"
            gateway.truth[entity_id] = index % 3 == 0
            app.create_device(
                "PresenceSensor",
                entity_id,
                GatewayDriver(gateway, entity_id),
                parkingLot=lot,
            )
            index += 1
    app.start()
    return app, free, gateway


def timed_period(app):
    started = time.perf_counter()
    app.advance(PERIOD)
    return time.perf_counter() - started


def test_batched_sweep_beats_scalar(table, benchmark):
    def run_series():
        rows = []
        timings = {}
        payloads = {}
        round_trips = {}
        modes = (
            ("scalar", BatchConfig(), None),
            ("batch serial", BatchConfig(enabled=True), None),
            (
                "batch threaded",
                BatchConfig(enabled=True),
                SweepConfig(mode="threaded", workers=4),
            ),
        )
        for label, batch, sweep in modes:
            app, free, gateway = build_app(batch, slow=True, sweep=sweep)
            elapsed = timed_period(app)
            timings[label] = elapsed
            payloads[label] = free.deliveries
            round_trips[label] = gateway.round_trips
            rows.append(
                (
                    label,
                    gateway.round_trips,
                    f"{elapsed * 1000:.1f}",
                    f"{timings['scalar'] / elapsed:.1f}x",
                )
            )
        return rows, timings, payloads, round_trips

    rows, timings, payloads, round_trips = benchmark.pedantic(
        run_series, rounds=1, iterations=1
    )
    table(
        f"Columnar batch reads: 80-sensor fleet, one gateway, "
        f"{READ_LATENCY * 1000:.1f} ms per round-trip",
        ("mode", "round trips", "sweep ms", "speedup"),
        rows,
    )
    # Identical grouped payloads in every mode.
    assert payloads["batch serial"] == payloads["scalar"]
    assert payloads["batch threaded"] == payloads["scalar"]
    # One round-trip per shard cohort instead of one per device.
    assert round_trips["scalar"] == sum(FLEET.values())
    assert round_trips["batch serial"] == len(FLEET)
    # Acceptance bar: batching collapses the sweep at least 5x.
    assert timings["scalar"] / timings["batch serial"] >= 5.0
    assert timings["scalar"] / timings["batch threaded"] >= 5.0


def test_ten_thousand_device_throughput(table, benchmark):
    """At 10k devices the modeled round-trip reduction is the paper's
    large-scale story; on a zero-latency gateway the batch machinery
    itself (cohort formation, plan dispatch, column merge) must also
    not eat the win."""
    fleet = {"A22": 3400, "B16": 3300, "D6": 3300}

    def run_pair():
        results = {}
        for label, batch in (
            ("scalar", BatchConfig()),
            ("batch", BatchConfig(enabled=True)),
        ):
            app, free, gateway = build_app(batch, slow=False, fleet=fleet)
            elapsed = timed_period(app)
            results[label] = (elapsed, free.deliveries, gateway.round_trips)
        return results

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    scalar_s, scalar_payload, scalar_trips = results["scalar"]
    batch_s, batch_payload, batch_trips = results["batch"]
    modeled_speedup = scalar_trips / batch_trips
    devices = sum(fleet.values())
    table(
        "10k-device sweep: modeled round-trips and machinery overhead",
        ("mode", "round trips", "modeled wire ms", "actual ms"),
        (
            (
                "scalar",
                scalar_trips,
                f"{scalar_trips * READ_LATENCY * 1000:.0f}",
                f"{scalar_s * 1000:.1f}",
            ),
            (
                "batch",
                batch_trips,
                f"{batch_trips * READ_LATENCY * 1000:.0f}",
                f"{batch_s * 1000:.1f}",
            ),
        ),
    )
    assert batch_payload == scalar_payload
    assert scalar_trips == devices
    # >= 10x fewer round-trips — the large-scale acceptance target.
    assert modeled_speedup >= 10.0
    # Zero-latency overhead bound: cohort/plan bookkeeping may not cost
    # more than the per-device supervised loop it replaces, with slack.
    assert batch_s <= scalar_s * 1.5


def test_vectorized_substrate_column_cost(table, benchmark):
    """The simulation substrate's own columnar read: one hash per
    entity either way, but the column skips per-call supervision, so
    it must stay at worst comparable and strictly fewer driver calls."""
    clock = SimulationClock()
    substrate = FleetSubstrate(clock, seed=11)
    ids = [f"e-{i}" for i in range(4096)]

    def run_pair():
        clock.advance(1.0)
        started = time.perf_counter()
        column = substrate.read_column("presence", ids)
        column_s = time.perf_counter() - started
        clock.advance(1.0)
        started = time.perf_counter()
        scalars = [substrate.value("presence", e) for e in ids]
        scalar_s = time.perf_counter() - started
        return column_s, scalar_s, len(column), len(scalars)

    column_s, scalar_s, column_n, scalar_n = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    table(
        "FleetSubstrate: 4096-entity column vs scalar loop",
        ("path", "values", "ms"),
        (
            ("read_column", column_n, f"{column_s * 1000:.2f}"),
            ("value() loop", scalar_n, f"{scalar_s * 1000:.2f}"),
        ),
    )
    assert column_n == scalar_n == len(ids)
    assert substrate.batch_reads >= 1
    # Same hash work, less call overhead: the column may not regress
    # past the scalar loop by more than 25%.
    assert column_s <= scalar_s * 1.25
