"""Perf snapshots: record a benchmark run, diff later runs against it.

The benchmarks in this directory assert *shapes* (who wins, by how
much at minimum).  This script adds a second, longitudinal gate: the
first accepted run of the hot-path benchmarks is checked in as a
snapshot (``BENCH_<nnn>.json`` at the repo root), and CI re-runs the
scenarios and diffs against it.  Structural facts (round-trip counts,
plan compile/hit counts) must match exactly — they are deterministic.
Timing ratios are machine-dependent, so they only gate with a generous
relative tolerance: a new run may not fall below
``snapshot * (1 - tolerance)``.  Getting *faster* never fails.

Usage::

    PYTHONPATH=src python benchmarks/perf_snapshot.py --write BENCH_006.json
    PYTHONPATH=src python benchmarks/perf_snapshot.py --check BENCH_006.json

``--check`` may repeat: the scenarios run once and every snapshot diffs
against that run.  A snapshot only gates the sections it records
(absent sections are skipped), so era-scoped snapshots compose —
``BENCH_006.json`` covers the batch/cache/plan sections,
``BENCH_007.json`` covers ``shard_scaling``, ``BENCH_008.json`` covers
``placement``, ``BENCH_009.json`` covers ``tuning`` and
``BENCH_010.json`` covers ``fleet``::

    python benchmarks/perf_snapshot.py \\
        --check BENCH_006.json --check BENCH_007.json

``--section`` (repeatable) restricts a ``--write`` run to named
sections, which is how the era-scoped snapshots are produced::

    python benchmarks/perf_snapshot.py \\
        --section shard_scaling --write BENCH_007.json

Exit status 0 on a clean diff, 1 with a line per violation otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

from bench_batch_read import (
    FLEET,
    READ_LATENCY,
    BatchConfig,
    SweepConfig,
    build_app,
    timed_period,
)
from bench_query_cache import (
    CacheConfig,
    build_app as build_cache_app,
    timed_bursts,
)

from repro.api import Application, Context, RuntimeConfig, analyze
from repro.runtime.device import CallableDriver

SNAPSHOT_VERSION = 1
DEFAULT_TOLERANCE = 0.5  # a run may lose half the recorded speedup
TEN_K_FLEET = {"A22": 3400, "B16": 3300, "D6": 3300}
PLAN_PUBLISHES = 200

PLAN_DESIGN = analyze(
    """
    device MotionSensor { source presence as Boolean; }

    context Watcher as Integer {
        when provided presence from MotionSensor
        always publish;
    }
    """
)


class _Watcher(Context):
    def on_presence_from_motion_sensor(self, event, discover):
        return 1


def measure_batch_read() -> dict:
    """The 80-sensor gateway scenario: wall-time speedups."""
    timings = {}
    trips = {}
    payloads = {}
    modes = (
        ("scalar", BatchConfig(), None),
        ("batch_serial", BatchConfig(enabled=True), None),
        (
            "batch_threaded",
            BatchConfig(enabled=True),
            SweepConfig(mode="threaded", workers=4),
        ),
    )
    for label, batch, sweep in modes:
        app, free, gateway = build_app(batch, slow=True, sweep=sweep)
        timings[label] = timed_period(app)
        trips[label] = gateway.round_trips
        payloads[label] = free.deliveries
    if payloads["batch_serial"] != payloads["scalar"]:
        raise AssertionError("batch serial payloads diverged from scalar")
    if payloads["batch_threaded"] != payloads["scalar"]:
        raise AssertionError("batch threaded payloads diverged from scalar")
    return {
        "fleet": sum(FLEET.values()),
        "read_latency_s": READ_LATENCY,
        "scalar_round_trips": trips["scalar"],
        "batch_round_trips": trips["batch_serial"],
        "speedup_serial": round(
            timings["scalar"] / timings["batch_serial"], 2
        ),
        "speedup_threaded": round(
            timings["scalar"] / timings["batch_threaded"], 2
        ),
    }


def measure_scale_10k() -> dict:
    """10k devices on a zero-latency gateway: modeled round-trip
    reduction (deterministic) — the large-scale acceptance number."""
    trips = {}
    payloads = {}
    for label, batch in (
        ("scalar", BatchConfig()),
        ("batch", BatchConfig(enabled=True)),
    ):
        app, free, gateway = build_app(
            batch, slow=False, fleet=TEN_K_FLEET
        )
        timed_period(app)
        trips[label] = gateway.round_trips
        payloads[label] = free.deliveries
    if payloads["batch"] != payloads["scalar"]:
        raise AssertionError("10k batch payloads diverged from scalar")
    return {
        "devices": sum(TEN_K_FLEET.values()),
        "scalar_round_trips": trips["scalar"],
        "batch_round_trips": trips["batch"],
        "modeled_speedup": round(trips["scalar"] / trips["batch"], 1),
    }


def measure_delivery_plans() -> dict:
    """Compiled dispatch reuse over an event-driven publish stream."""
    app = Application(
        PLAN_DESIGN, RuntimeConfig(batch=BatchConfig(enabled=True))
    )
    app.implement("Watcher", _Watcher())
    instance = app.create_device(
        "MotionSensor",
        "m-1",
        CallableDriver(sources={"presence": lambda: True}),
    )
    app.start()
    for __ in range(PLAN_PUBLISHES):
        instance.publish("presence", True)
    stats = app.planner.stats()
    return {
        "publishes": PLAN_PUBLISHES,
        "compiles": stats["compiles"],
        "hits": stats["hits"],
        "invalidations": stats["invalidations"],
    }


def measure_shard_scaling() -> dict:
    """Process-sharded sweeps over a 20k-device modeled-latency fleet.

    A scaled-down sibling of ``bench_shard_scaling.py`` (the 100k run
    lives in the CI ``shard-smoke`` job): structural facts — fleet
    size, worker count, identical deliveries — gate exactly, and the
    4-worker wall-time speedup gates as a ratio.
    """
    import time as _time

    from repro.api import (
        ShardConfig,
        ShardedRuntime,
        SimulatedFleetBootstrap,
    )

    devices = 20_000
    service_time = 30e-6

    def timed(workers):
        bootstrap = SimulatedFleetBootstrap(
            count=devices,
            seed=11,
            service_time=service_time,
            batch=True,
            shard=ShardConfig(enabled=workers > 1, workers=workers),
        )
        runtime = ShardedRuntime(bootstrap)
        published = []
        runtime.app.bus.subscribe(
            ("context", "ZoneLoad"),
            lambda event: published.append((event.value, event.timestamp)),
        )
        runtime.start()
        try:
            best = float("inf")
            for __ in range(2):
                started = _time.perf_counter()
                runtime.advance(60.0)
                best = min(best, _time.perf_counter() - started)
            return best, published
        finally:
            runtime.stop()

    serial_s, serial_values = timed(1)
    sharded_s, sharded_values = timed(4)
    if sharded_values != serial_values:
        raise AssertionError("sharded deliveries diverged from single")
    return {
        "devices": devices,
        "workers": 4,
        "sweeps_identical": True,
        "speedup": round(serial_s / sharded_s, 2),
    }


def measure_query_cache() -> dict:
    """The PR-5 read-cache scenario, kept in the trajectory."""
    uncached_app, __, __states = build_cache_app(CacheConfig(), slow=True)
    uncached_s, uncached_payload = timed_bursts(uncached_app)
    cached_app, __, __states = build_cache_app(
        CacheConfig(enabled=True, ttl_seconds=60.0), slow=True
    )
    cached_s, cached_payload = timed_bursts(cached_app)
    if cached_payload != uncached_payload:
        raise AssertionError("cached payloads diverged from uncached")
    return {"speedup": round(uncached_s / cached_s, 2)}


def measure_placement() -> dict:
    """The placement-tier scenario: WAN byte cut, fully deterministic.

    The modeled network makes every number structural — bytes shipped,
    partials sent, the byte-cut ratio and both modeled p99 uplink
    latencies repeat exactly run to run — so the whole section gates
    exactly.
    """
    from bench_placement import DEVICES, EDGE_NODES, run_mode

    cloud = run_mode(edge=False)
    edge = run_mode(edge=True)
    if edge["deliveries"] != cloud["deliveries"]:
        raise AssertionError("edge deliveries diverged from cloud-only")
    return {
        "devices": DEVICES,
        "edge_nodes": EDGE_NODES,
        "cloud_wan_bytes": cloud["wan_bytes"],
        "edge_wan_bytes": edge["wan_bytes"],
        "byte_cut": round(cloud["wan_bytes"] / edge["wan_bytes"], 2),
        "edge_beats_cloud_p99": (
            edge["p99_uplink_s"] < cloud["p99_uplink_s"]
        ),
    }


def measure_adaptive_tuning() -> dict:
    """The self-tuning loop under the flapping fault schedule.

    The cost model is analytic and the controller deterministic
    (``epsilon=0``), so every number — p99s, adjustment counts,
    rollbacks — is structural and the whole section gates exactly.
    """
    from bench_adaptive import (
        ADAPTIVE_THRESHOLD,
        DEVICES,
        FIXED_MIN_COLUMNS,
        FIXED_THRESHOLDS,
        SWEEPS,
        run_config,
    )

    fixed = [
        run_config(min_column, threshold)
        for min_column in FIXED_MIN_COLUMNS
        for threshold in FIXED_THRESHOLDS
    ]
    adaptive = run_config(2, ADAPTIVE_THRESHOLD, adaptive=True)
    for run in fixed + [adaptive]:
        if run["full_payloads"] != SWEEPS:
            raise AssertionError(
                "a run dropped payload members despite stale delivery"
            )
    stats = adaptive["tuning"]["stats"]
    best_fixed_p99 = min(run["p99_ms"] for run in fixed)
    return {
        "devices": DEVICES,
        "sweeps": SWEEPS,
        "adaptive_p99_ms": adaptive["p99_ms"],
        "adaptive_mean_ms": adaptive["mean_ms"],
        "best_fixed_p99_ms": best_fixed_p99,
        "adaptive_beats_all_fixed": (
            adaptive["p99_ms"] < best_fixed_p99
        ),
        "adjustments_up": stats["adjustments"].get(
            "batch.min_column:up", 0
        ),
        "adjustments_down": stats["adjustments"].get(
            "batch.min_column:down", 0
        ),
        "rollbacks": stats["rollbacks"],
    }


def measure_fleet() -> dict:
    """The fleet-scale wire path, scaled to 100k devices.

    A scaled-down sibling of ``bench_fleet_scale.py`` (the 1M run
    lives in the CI ``fleet-smoke`` job).  Shard assignment is stable
    crc32 and the activity signal is deterministic in the seed, so the
    pickled byte counts, delta-row and quiescent-row counts gate
    exactly; only the 4-worker wall-time speedup is machine-dependent
    and gates as a ratio.
    """
    import time as _time

    from repro.api import ShardConfig, ShardedRuntime
    from repro.runtime.shard import FleetScaleBootstrap

    devices = 100_000
    service_time = 50e-6
    sweeps = 4

    def runtime_for(shard, service):
        bootstrap = FleetScaleBootstrap(
            count=devices,
            seed=11,
            service_time=service,
            activity=0.02,
            shard=shard,
        )
        runtime = ShardedRuntime(bootstrap)
        published = []
        runtime.app.bus.subscribe(
            ("context", "ZoneLevels"),
            lambda event: published.append((event.value, event.timestamp)),
        )
        return runtime.start(), published

    def wire_run(wire, delta):
        runtime, published = runtime_for(
            ShardConfig(
                enabled=True, workers=4, wire_format=wire, delta_sync=delta
            ),
            0.0,
        )
        try:
            runtime.advance(sweeps * 60.0)
            stats = runtime.stats()
            return (
                stats["router"]["wire_bytes"],
                stats["delta_rows"],
                stats["quiescent_rows"],
                published,
            )
        finally:
            runtime.stop()

    rows_bytes, __, __ignored, rows_published = wire_run("rows", False)
    delta_bytes, delta_rows, quiescent_rows, delta_published = wire_run(
        "columnar", True
    )
    if delta_published != rows_published:
        raise AssertionError("delta deliveries diverged from rows wire")

    runtime, serial_published = runtime_for(
        ShardConfig(enabled=False), service_time
    )
    try:
        started = _time.perf_counter()
        runtime.advance(60.0)
        serial_s = _time.perf_counter() - started
    finally:
        runtime.stop()
    runtime, sharded_published = runtime_for(
        ShardConfig(enabled=True, workers=4), service_time
    )
    try:
        sharded_s = float("inf")
        for __ in range(2):
            started = _time.perf_counter()
            runtime.advance(60.0)
            sharded_s = min(sharded_s, _time.perf_counter() - started)
    finally:
        runtime.stop()
    if sharded_published[: len(serial_published)] != serial_published:
        raise AssertionError("sharded deliveries diverged from single")
    return {
        "devices": devices,
        "workers": 4,
        "sweeps": sweeps,
        "deliveries_identical": True,
        "rows_bytes": rows_bytes,
        "delta_bytes": delta_bytes,
        "byte_cut": round(rows_bytes / delta_bytes, 2),
        "delta_rows": delta_rows,
        "quiescent_rows": quiescent_rows,
        "speedup": round(serial_s / sharded_s, 2),
    }


SECTIONS = {
    "batch_read": measure_batch_read,
    "scale_10k": measure_scale_10k,
    "delivery_plans": measure_delivery_plans,
    "query_cache": measure_query_cache,
    "shard_scaling": measure_shard_scaling,
    "placement": measure_placement,
    "tuning": measure_adaptive_tuning,
    "fleet": measure_fleet,
}


def measure(sections=None) -> dict:
    names = sections if sections else list(SECTIONS)
    current = {"version": SNAPSHOT_VERSION}
    for name in names:
        current[name] = SECTIONS[name]()
    return current


# Per-section gate kinds: exact fields are deterministic structure,
# ratio fields gate with the relative tolerance.
EXACT = {
    "batch_read": ("fleet", "scalar_round_trips", "batch_round_trips"),
    "scale_10k": (
        "devices",
        "scalar_round_trips",
        "batch_round_trips",
        "modeled_speedup",
    ),
    "delivery_plans": ("publishes", "compiles", "hits", "invalidations"),
    "shard_scaling": ("devices", "workers", "sweeps_identical"),
    "placement": (
        "devices",
        "edge_nodes",
        "cloud_wan_bytes",
        "edge_wan_bytes",
        "byte_cut",
        "edge_beats_cloud_p99",
    ),
    "tuning": (
        "devices",
        "sweeps",
        "adaptive_p99_ms",
        "adaptive_mean_ms",
        "best_fixed_p99_ms",
        "adaptive_beats_all_fixed",
        "adjustments_up",
        "adjustments_down",
        "rollbacks",
    ),
    "fleet": (
        "devices",
        "workers",
        "sweeps",
        "deliveries_identical",
        "rows_bytes",
        "delta_bytes",
        "byte_cut",
        "delta_rows",
        "quiescent_rows",
    ),
}
RATIOS = {
    "batch_read": ("speedup_serial", "speedup_threaded"),
    "query_cache": ("speedup",),
    "shard_scaling": ("speedup",),
    "fleet": ("speedup",),
}


def diff(snapshot: dict, current: dict, tolerance: float) -> list:
    """Violations of ``current`` against ``snapshot`` (empty = clean).

    Sections absent from the snapshot are skipped: each era-scoped
    snapshot gates only what it recorded.
    """
    problems = []
    for section, keys in EXACT.items():
        if section not in snapshot:
            continue
        recorded = snapshot.get(section, {})
        observed = current.get(section, {})
        for key in keys:
            if observed.get(key) != recorded.get(key):
                problems.append(
                    f"{section}.{key}: snapshot {recorded.get(key)!r}, "
                    f"got {observed.get(key)!r} (must match exactly)"
                )
    for section, keys in RATIOS.items():
        if section not in snapshot:
            continue
        recorded = snapshot.get(section, {})
        observed = current.get(section, {})
        for key in keys:
            was = recorded.get(key)
            now = observed.get(key)
            if was is None or now is None:
                problems.append(
                    f"{section}.{key}: missing from snapshot or run"
                )
                continue
            floor = was * (1.0 - tolerance)
            if now < floor:
                problems.append(
                    f"{section}.{key}: {now:.2f}x fell below "
                    f"{floor:.2f}x (snapshot {was:.2f}x, "
                    f"tolerance {tolerance:.0%})"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--write", metavar="PATH", help="run and record a snapshot"
    )
    group.add_argument(
        "--check",
        metavar="PATH",
        action="append",
        help="run and diff against a snapshot (repeatable; the "
        "scenarios run once)",
    )
    parser.add_argument(
        "--section",
        metavar="NAME",
        action="append",
        choices=sorted(SECTIONS),
        help="measure only the named section(s); with --write, the "
        "snapshot records only those (repeatable)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative speedup loss (default %(default)s)",
    )
    args = parser.parse_args(argv)

    current = measure(args.section)
    if args.write:
        with open(args.write, "w") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"snapshot written to {args.write}:")
        print(json.dumps(current, indent=2, sort_keys=True))
        return 0

    print(f"current run: {json.dumps(current, sort_keys=True)}")
    problems = []
    for path in args.check:
        with open(path) as handle:
            snapshot = json.load(handle)
        print(f"snapshot {path}: {json.dumps(snapshot, sort_keys=True)}")
        problems.extend(
            f"{path}: {problem}"
            for problem in diff(snapshot, current, args.tolerance)
        )
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    print("snapshot diff clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
