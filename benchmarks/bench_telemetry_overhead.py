"""T1 — telemetry keeps the publish hot path inside its 5% budget.

The design rule of ``repro.telemetry`` is that layers with existing
inline counters export them as *pull-time callbacks*: the bus's publish
path runs exactly the same byte-code with or without an attached
:class:`MetricsRegistry`, and only scrapes pay for collection.  This
benchmark enforces that contract — if someone moves per-publish work
into the hot path, the ratio assertion fails the CI smoke step.

A second series prices the *push* primitives (``Counter.inc``,
``Gauge.set``, ``Histogram.observe``) so the cost of instrumenting a
genuinely new site is a measured number, not a guess.
"""

import time

from repro.runtime.bus import EventBus
from repro.telemetry import MetricsRegistry, render_prometheus

PUBLISHES = 20_000
TRIALS = 7
BUDGET = 1.05  # instrumented publish must stay within 5% of plain

TOPIC = ("source", "PresenceSensor", "presence")


def _build_bus(metrics, subscribers):
    bus = EventBus(metrics=metrics)
    for __ in range(subscribers):
        bus.subscribe(TOPIC, lambda payload: None)
    return bus


def _time_publishes(bus, count=PUBLISHES):
    publish = bus.publish
    payload = {"value": 1}
    start = time.perf_counter()
    for __ in range(count):
        publish(TOPIC, payload)
    return time.perf_counter() - start


def test_publish_overhead_within_budget(table, benchmark):
    def run_series():
        rows = []
        ratios = []
        for subscribers in (0, 1, 4):
            plain = _build_bus(None, subscribers)
            registry = MetricsRegistry()
            instrumented = _build_bus(registry, subscribers)
            # Interleave trials and keep the minimum of each, so clock
            # noise and frequency drift hit both variants equally.
            best_plain = best_instrumented = float("inf")
            for __ in range(TRIALS):
                best_plain = min(best_plain, _time_publishes(plain))
                best_instrumented = min(
                    best_instrumented, _time_publishes(instrumented)
                )
            ratio = best_instrumented / best_plain
            ratios.append(ratio)
            rows.append(
                (
                    subscribers,
                    f"{best_plain / PUBLISHES * 1e9:.0f} ns",
                    f"{best_instrumented / PUBLISHES * 1e9:.0f} ns",
                    f"{ratio:.3f}x",
                )
            )
            # The instrumented bus must actually be observable.
            assert (
                registry.value("bus_published_total")
                == TRIALS * PUBLISHES
            )
            assert "bus_published_total" in render_prometheus(registry)
        return rows, ratios

    rows, ratios = benchmark.pedantic(run_series, rounds=1, iterations=1)
    table(
        "T1: publish cost, plain vs telemetry-attached bus "
        f"({PUBLISHES} publishes, best of {TRIALS})",
        ("subscribers", "plain", "instrumented", "ratio"),
        rows,
    )
    for ratio in ratios:
        assert ratio <= BUDGET, (
            f"instrumented publish is {ratio:.3f}x plain — "
            f"exceeds the {BUDGET:.2f}x telemetry budget"
        )


def test_instrument_primitive_costs(table, benchmark):
    """Price of one push-instrument update (the cost a *new* site pays)."""
    operations = 200_000
    registry = MetricsRegistry()
    counter = registry.counter("t_counter_total")
    gauge = registry.gauge("t_gauge")
    histogram = registry.histogram("t_histogram_seconds")

    def series():
        timings = {}
        for label, op, arg in (
            ("Counter.inc", counter.inc, 1),
            ("Gauge.set", gauge.set, 3.5),
            ("Histogram.observe", histogram.observe, 0.004),
        ):
            start = time.perf_counter()
            for __ in range(operations):
                op(arg)
            timings[label] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(series, rounds=1, iterations=1)
    table(
        f"T1b: push-instrument update cost ({operations} ops)",
        ("instrument", "ns/op"),
        [
            (label, f"{elapsed / operations * 1e9:.0f}")
            for label, elapsed in timings.items()
        ],
    )
    assert counter.value == operations
    assert histogram.count == operations
    # A histogram update stays cheap in absolute terms (< 2 us/op even
    # on a throttled CI runner) — it is safe on QoS-wrapped callbacks.
    assert timings["Histogram.observe"] / operations < 2e-6


def test_scrape_cost_is_off_hot_path(table, benchmark):
    """Rendering the registry is the scraper's cost, not the runtime's."""
    registry = MetricsRegistry()
    bus = _build_bus(registry, 2)
    for lot in range(50):
        registry.counter(
            "device_reads_total", device_type=f"Sensor{lot:02d}"
        ).inc(lot)
    _time_publishes(bus, 1000)

    rendered = benchmark(render_prometheus, registry)
    families = rendered.count("# TYPE")
    samples = sum(
        1 for line in rendered.splitlines() if not line.startswith("#")
    )
    table(
        "T1c: Prometheus scrape of a populated registry",
        ("families", "samples"),
        [(families, samples)],
    )
    assert families >= 6
    assert samples >= 55
