"""Compiler scaling: tool-chain cost vs design size.

The generative approach "factorizes the many dimensions of expertise at
the compilation level" (§I) — which only works if the compiler stays fast
as designs grow.  Reproduced shape: parse + analyze + generate scales
near-linearly in declaration count, and the generated framework size
tracks the design size with a stable leverage factor.
"""

import time

from repro.codegen.framework_gen import generate_framework
from repro.lang.parser import parse
from repro.lang.synth import synthesize_design
from repro.metrics.loc import count_loc
from repro.sema.analyzer import analyze

SIZES = [
    (5, 8, 3),
    (20, 30, 10),
    (60, 90, 30),
]


def test_toolchain_scaling(table, benchmark):
    def run_series():
        rows = []
        timings = {}
        for devices, contexts, controllers in SIZES:
            source = synthesize_design(devices, contexts, controllers)
            declarations = devices + contexts + controllers + 1
            start = time.perf_counter()
            parse(source)
            parse_time = time.perf_counter() - start
            start = time.perf_counter()
            design = analyze(source)
            analyze_time = time.perf_counter() - start
            start = time.perf_counter()
            generated = generate_framework(design, "Synth")
            generate_time = time.perf_counter() - start
            timings[declarations] = parse_time + analyze_time + generate_time
            rows.append(
                (
                    declarations,
                    f"{parse_time * 1e3:.1f} ms",
                    f"{analyze_time * 1e3:.1f} ms",
                    f"{generate_time * 1e3:.1f} ms",
                    count_loc(generated),
                    f"{count_loc(generated) / count_loc(source):.1f}x",
                )
            )
        return rows, timings

    rows, timings = benchmark.pedantic(run_series, rounds=1, iterations=1)
    table(
        "compiler cost vs design size",
        ("declarations", "parse", "analyze", "generate", "framework LoC",
         "leverage"),
        rows,
    )
    sizes = sorted(timings)
    scale_up = sizes[-1] / sizes[0]
    # near-linear: 11x declarations within ~40x time (graph layering is
    # worst-case quadratic but small designs dominate in practice)
    assert timings[sizes[-1]] < timings[sizes[0]] * scale_up * 5


def test_bench_parse_large(benchmark):
    source = synthesize_design(40, 60, 20)
    spec = benchmark(parse, source)
    assert len(spec.declarations) == 121


def test_bench_analyze_large(benchmark):
    source = synthesize_design(40, 60, 20)
    design = benchmark(analyze, source)
    assert len(design.contexts) == 60


def test_bench_generate_large(benchmark):
    design = analyze(synthesize_design(40, 60, 20))
    generated = benchmark(generate_framework, design, "Synth")
    assert "SynthFramework" in generated
