"""Ablations of the reproduction's design choices.

A1 — ``grouped by`` in the design vs. grouping in application code: the
     declarative construct costs nothing extra (it moves the same work
     into the runtime) while removing boilerplate from every context.
A2 — declared MapReduce vs. a plain handler loop on a compute-light job:
     the engine's collector/shuffle machinery has measurable but bounded
     overhead — the price of an interface that can swap in a parallel
     backend untouched (§V.B).
A3 — runtime value-conformance checking at the publish boundary:
     pre-validated StructureValues pass through cheaply; raw dicts pay
     validation on every publish.  Both orders of magnitude below the
     gathering cost itself.
"""

import time

from repro.runtime.app import Application
from repro.runtime.component import Context
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze
from repro.typesys.values import StructureValue, check_value

GROUPED_DESIGN = """\
device Sensor {
    attribute zone as ZoneEnum;
    source reading as Float;
}
enumeration ZoneEnum { A, B, C, D }
context Stats as Float {
    when periodic reading from Sensor <1 min>
    grouped by zone
    always publish;
}
"""

UNGROUPED_DESIGN = """\
device Sensor {
    attribute zone as ZoneEnum;
    source reading as Float;
}
enumeration ZoneEnum { A, B, C, D }
context Stats as Float {
    when periodic reading from Sensor <1 min>
    always publish;
}
"""

MAPREDUCE_DESIGN = """\
device Sensor {
    attribute zone as ZoneEnum;
    source reading as Float;
}
enumeration ZoneEnum { A, B, C, D }
context Stats as Float {
    when periodic reading from Sensor <1 min>
    grouped by zone
    with map as Float reduce as Float
    always publish;
}
"""


class DeclarativeGrouping(Context):
    """Receives runtime-grouped readings (A1: design-level grouping)."""

    def on_periodic_reading(self, by_zone, discover):
        total = sum(sum(values) for values in by_zone.values())
        return total


class ManualGrouping(Context):
    """Groups in application code (A1: the boilerplate the DSL removes)."""

    def on_periodic_reading(self, readings, discover):
        by_zone = {}
        for reading in readings:
            by_zone.setdefault(reading.device.zone, []).append(reading.value)
        return sum(sum(values) for values in by_zone.values())


class DeclaredMapReduce(Context):
    """A2: the same sum through the MapReduce engine."""

    def map(self, zone, value, collector):
        collector.emit_map(zone, value)

    def reduce(self, zone, values, collector):
        collector.emit_reduce(zone, sum(values))

    def on_periodic_reading(self, by_zone, discover):
        return sum(by_zone.values())


def build(design_text, implementation, sensors=400):
    app = Application(analyze(design_text))
    app.implement("Stats", implementation)
    for index in range(sensors):
        app.create_device(
            "Sensor",
            f"s{index}",
            CallableDriver(sources={"reading": lambda: 1.0}),
            zone="ABCD"[index % 4],
        )
    app.start()
    return app


def sweep_time(app, sweeps=20):
    app.advance(60)  # warm
    start = time.perf_counter()
    app.advance(60 * sweeps)
    return (time.perf_counter() - start) / sweeps


def test_ablation_grouping_location(table, benchmark):
    """A1: declarative vs manual grouping cost per sweep."""

    def run():
        declarative = sweep_time(
            build(GROUPED_DESIGN, DeclarativeGrouping()), sweeps=40
        )
        manual = sweep_time(build(UNGROUPED_DESIGN, ManualGrouping()),
                            sweeps=40)
        return declarative, manual

    declarative, manual = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        "A1: grouping in the design vs in application code (400 sensors)",
        ("variant", "sweep time"),
        [
            ("grouped by (runtime)", f"{declarative * 1e3:.2f} ms"),
            ("manual grouping (user code)", f"{manual * 1e3:.2f} ms"),
        ],
    )
    # Same work either way — the declarative form must never be the
    # expensive one, and the manual form pays at most a small factor
    # (reading-object materialization); bound loose for 1-core CI noise.
    assert declarative < manual * 2.0
    assert manual < declarative * 5.0


def test_ablation_mapreduce_interface_overhead(table, benchmark):
    """A2: declared MapReduce vs a plain grouped handler."""

    def run():
        plain = sweep_time(build(GROUPED_DESIGN, DeclarativeGrouping()))
        mapreduce = sweep_time(build(MAPREDUCE_DESIGN, DeclaredMapReduce()))
        return plain, mapreduce

    plain, mapreduce = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        "A2: MapReduce interface overhead on a light job (400 sensors)",
        ("variant", "sweep time", "overhead"),
        [
            ("grouped handler", f"{plain * 1e3:.2f} ms", "-"),
            ("declared map/reduce", f"{mapreduce * 1e3:.2f} ms",
             f"{mapreduce / plain:.2f}x"),
        ],
    )
    # The engine costs something, but stays within a small constant factor.
    assert mapreduce < plain * 4


def test_ablation_tracer_overhead(table, benchmark):
    """A4: tracing claims to be observation-only; quantify its cost."""
    from repro.runtime.tracing import Tracer

    def run():
        timings = {}
        for label, traced in (("untraced", False), ("traced", True)):
            app = build(GROUPED_DESIGN, DeclarativeGrouping())
            if traced:
                Tracer(app, capacity=1_000_000).attach()
            timings[label] = sweep_time(app, sweeps=10)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        "A4: execution-tracer overhead per sweep (400 sensors)",
        ("variant", "sweep time", "overhead"),
        [
            ("untraced", f"{timings['untraced'] * 1e3:.2f} ms", "-"),
            ("traced", f"{timings['traced'] * 1e3:.2f} ms",
             f"{timings['traced'] / timings['untraced']:.2f}x"),
        ],
    )
    assert timings["traced"] < timings["untraced"] * 3


def test_ablation_value_checking(table, benchmark):
    """A3: publish-boundary conformance checking cost."""
    design = analyze(
        "structure Availability { parkingLot as String; count as Integer; }\n"
        "context C as Availability[] { when required; }\n"
    )
    availability_type = design.types.lookup("Availability")
    array_type = design.types.lookup("Availability[]")
    raw = [{"parkingLot": f"L{i}", "count": i} for i in range(100)]
    prebuilt = [
        StructureValue(availability_type, parkingLot=f"L{i}", count=i)
        for i in range(100)
    ]

    def run():
        timings = {}
        for label, payload in (("raw dicts", raw),
                               ("prebuilt values", prebuilt)):
            start = time.perf_counter()
            for __ in range(200):
                check_value(array_type, payload)
            timings[label] = (time.perf_counter() - start) / 200
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        "A3: publish-boundary type checking (100-element Availability[])",
        ("payload", "check time"),
        [(label, f"{seconds * 1e6:.1f} us")
         for label, seconds in timings.items()],
    )
    assert timings["prebuilt values"] <= timings["raw dicts"]
