"""C2 — `grouped by` exposes parallelism (§IV.2, DiaSwarm).

Reproduced shape: on a compute-light job (Figure 10's free-space count)
the serial executor wins at every size — Python threads add coordination
cost without parallel speed-up, which is why the paper targets a real
MapReduce backend for city scale.  On a compute-heavy per-reading job the
process executor overtakes serial as data grows: the crossover the
design-level parallelism exists to exploit.
"""

import math
import multiprocessing
import time

import pytest

from repro.mapreduce.api import MapReduce
from repro.mapreduce.engine import (
    MapReduceEngine,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    run_mapreduce,
)
from repro.simulation.traces import grouped_bernoulli


class FreeSpaceCounter(MapReduce):
    """Figure 10's job: count free spaces per lot (compute-light)."""

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, True)

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, len(values))


class CombiningFreeSpaceCounter(MapReduce):
    """Figure 10's job in combinable form: map emits 1 per free space,
    combine and reduce both sum — same results, O(groups) shuffle."""

    def map(self, lot, presence, collector):
        if not presence:
            collector.emit_map(lot, 1)

    def combine(self, lot, counts, collector):
        collector.emit_combine(lot, sum(counts))

    def reduce(self, lot, counts, collector):
        collector.emit_reduce(lot, sum(counts))


class SpectralJob(MapReduce):
    """Compute-heavy per-reading work (per-sensor signal analysis)."""

    WORK = 300

    def map(self, lot, reading, collector):
        acc = 0.0
        for i in range(1, self.WORK):
            acc += math.sin(i * (2.0 if reading else 1.0)) / i
        collector.emit_map(lot, acc)

    def reduce(self, lot, values, collector):
        collector.emit_reduce(lot, sum(values) / len(values))


def dataset(sensors_per_lot, lots=8, seed=0):
    return grouped_bernoulli(
        [f"L{i:02d}" for i in range(lots)], sensors_per_lot, 0.5, seed=seed
    )


def timed(job, grouped, executor, repeats=3):
    best = float("inf")
    result = None
    for __ in range(repeats):
        start = time.perf_counter()
        result = run_mapreduce(job, grouped, executor)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_executor_scaling_series(table, benchmark):
    def run_series():
        rows = []
        crossover_seen = False
        for per_lot in (50, 500, 2000):
            grouped = dataset(per_lot)
            light_serial, light_result = timed(FreeSpaceCounter(), grouped,
                                               SerialExecutor())
            light_thread, thread_result = timed(FreeSpaceCounter(), grouped,
                                                ThreadExecutor(4))
            assert light_result == thread_result
            heavy_serial, heavy_s = timed(SpectralJob(), grouped,
                                          SerialExecutor(), repeats=1)
            heavy_process, heavy_p = timed(SpectralJob(), grouped,
                                           ProcessExecutor(4), repeats=1)
            assert set(heavy_s) == set(heavy_p)
            if heavy_process < heavy_serial:
                crossover_seen = True
            total = per_lot * 8
            rows.append(
                (
                    total,
                    f"{light_serial * 1e3:.1f} ms",
                    f"{light_thread * 1e3:.1f} ms",
                    f"{heavy_serial * 1e3:.0f} ms",
                    f"{heavy_process * 1e3:.0f} ms",
                )
            )
        return rows, crossover_seen

    rows, crossover_seen = benchmark.pedantic(run_series, rounds=1,
                                              iterations=1)
    cores = multiprocessing.cpu_count()
    table(
        "C2: MapReduce executors vs dataset size (8 lots, "
        f"{cores} CPU core(s))",
        ("readings", "light/serial", "light/4 threads", "heavy/serial",
         "heavy/4 procs"),
        rows,
    )
    if cores > 1:
        # Shape: parallel processes win the compute-heavy job at scale.
        assert crossover_seen
    else:
        # Single-core host: parallel speed-up is physically impossible,
        # so the reproducible shape reduces to result equivalence (checked
        # inside run_series) plus bounded coordination overhead.
        largest = rows[-1]
        heavy_serial = float(largest[3].rstrip(" ms"))
        heavy_process = float(largest[4].rstrip(" ms"))
        assert heavy_process < heavy_serial * 3


def test_combiner_shuffle_volume(table, benchmark):
    """C2b — map-side combining collapses shuffle volume to O(groups).

    Without a combiner every intermediate pair (one per free space)
    crosses the map->reduce boundary; with one, at most chunks x lots
    partial sums do.  Results are identical either way.
    """

    def run_series():
        rows = []
        ratios = {}
        for per_lot in (50, 500, 2000):
            grouped = dataset(per_lot)
            row = [per_lot * 8]
            for make_executor, label in (
                (SerialExecutor, "serial"),
                (lambda: ThreadExecutor(4), "4 threads"),
            ):
                engine_plain = MapReduceEngine(make_executor())
                engine_combine = MapReduceEngine(make_executor())
                plain_result = engine_plain.run(FreeSpaceCounter(), grouped)
                combine_result = engine_combine.run(
                    CombiningFreeSpaceCounter(), grouped
                )
                assert plain_result == combine_result
                plain = engine_plain.last_stats["shuffled"]
                combined = engine_combine.last_stats["shuffled"]
                ratios[(per_lot, label)] = plain / max(1, combined)
                row.extend([plain, combined, f"{plain / combined:.0f}x"])
            rows.append(tuple(row))
        return rows, ratios

    rows, ratios = benchmark.pedantic(run_series, rounds=1, iterations=1)
    table(
        "C2b: shuffled pairs, combine off vs on (8 lots)",
        ("readings", "serial off", "serial on", "serial win",
         "threads off", "threads on", "threads win"),
        rows,
    )
    # Shape: at the largest scale point the combiner cuts shuffle volume
    # by well over an order of magnitude on every executor.
    assert ratios[(2000, "serial")] >= 10
    assert ratios[(2000, "4 threads")] >= 10


@pytest.mark.parametrize("per_lot", [100, 1000])
def test_bench_figure10_job_serial(benchmark, per_lot):
    grouped = dataset(per_lot)
    result = benchmark(run_mapreduce, FreeSpaceCounter(), grouped)
    assert len(result) == 8


def test_bench_figure10_job_threaded(benchmark):
    grouped = dataset(1000)
    executor = ThreadExecutor(4)
    result = benchmark(run_mapreduce, FreeSpaceCounter(), grouped, executor)
    assert len(result) == 8


def test_bench_heavy_job_process_pool(benchmark):
    grouped = dataset(200, lots=4)
    executor = ProcessExecutor(4)

    def run():
        return run_mapreduce(SpectralJob(), grouped, executor)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(result) == 4
