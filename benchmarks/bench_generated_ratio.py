"""C1 — the generative-productivity claim (§V).

"The amount of generated code may represent up to 80% of the resulting
application code."  Reproduced: for each bundled application we compile
its design and compare generated framework LoC against the handwritten
implementation LoC (logic + devices + assembly).  The headline number is
the generated ratio per application.
"""

import inspect

import pytest

from repro.apps import avionics, cooker, homeassist, parking
from repro.codegen.framework_gen import generate_framework
from repro.codegen.report import measure_generation


def handwritten_source(app_package) -> str:
    """The developer-written code of a bundled app: logic + devices."""
    chunks = []
    for module_name in ("logic", "devices"):
        module = getattr(
            __import__(
                f"{app_package.__name__}.{module_name}",
                fromlist=[module_name],
            ),
            "__name__",
            None,
        )
        import importlib

        chunks.append(
            inspect.getsource(
                importlib.import_module(
                    f"{app_package.__name__}.{module_name}"
                )
            )
        )
    return "\n".join(chunks)


APPS = [
    ("cooker", cooker, cooker.DESIGN_SOURCE),
    ("parking", parking, parking.DESIGN_SOURCE),
    ("avionics", avionics, avionics.DESIGN_SOURCE),
    ("homeassist", homeassist, homeassist.DESIGN_SOURCE),
]


def test_generated_ratio_table(table, benchmark):
    def run_measurement():
        rows = []
        ratios = {}
        for name, package, design_source in APPS:
            report = measure_generation(
                design_source,
                handwritten_source(package),
                name=name.capitalize(),
            )
            ratios[name] = report.generated_ratio
            rows.append(
                (
                    name,
                    report.design_loc,
                    report.generated_loc,
                    report.handwritten_loc,
                    f"{report.generated_ratio:.1%}",
                    f"{report.leverage:.1f}x",
                )
            )
        return rows, ratios

    rows, ratios = benchmark.pedantic(run_measurement, rounds=1,
                                      iterations=1)
    table(
        "C1: generated vs handwritten code (paper: 'up to 80%')",
        ("app", "design LoC", "generated", "handwritten", "ratio",
         "leverage"),
        rows,
    )
    # Shape: every app gets a substantial generated share; the best case
    # reaches the paper's up-to-80% regime.
    assert all(ratio > 0.35 for ratio in ratios.values())
    assert max(ratios.values()) >= 0.55


@pytest.mark.parametrize("name,package,design", APPS)
def test_bench_compile_design(benchmark, name, package, design):
    """Compiler throughput: parse + analyze + generate."""
    source = benchmark(generate_framework, design, name.capitalize())
    assert "DO NOT EDIT" in source
