"""Shared benchmark helpers.

Every benchmark prints the series/rows it reproduces (the paper is a
methodology paper, so the 'tables' are ours: scaling series, ratios,
latencies) in addition to pytest-benchmark's timing table.  Shape
assertions — who wins, how things grow — run inside the benchmarks so a
regression fails loudly rather than silently producing a different
conclusion.
"""

from __future__ import annotations

import sys

import pytest


def format_table(title, headers, rows):
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows))
        for i, header in enumerate(headers)
    ]
    lines = [f"\n== {title} =="]
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines) + "\n"


@pytest.fixture
def table(capfd):
    """Print a reproduction table, bypassing pytest's output capture so
    the rows appear in the benchmark log even without ``-s``."""

    def emit(title, headers, rows):
        text = format_table(title, headers, rows)
        with capfd.disabled():
            sys.stdout.write(text)
            sys.stdout.flush()

    return emit
