"""C6 — the dependability dimension (§VI future work, built out).

Reproduced shape: as sensor MTBF shrinks, fleet availability falls and
the application sees smaller gathering sweeps — but it keeps publishing
on schedule (failures are masked, not fatal), and recovery restores the
sweep size.
"""

from repro.apps.parking import build_parking_app
from repro.runtime.clock import SimulationClock
from repro.simulation.faults import FaultInjector


def run_day(mtbf_seconds, mttr_seconds=1800.0, sensors=60):
    clock = SimulationClock()
    app = build_parking_app(
        capacities={"A22": sensors},
        clock=clock,
        seed=31,
        environment_step_seconds=600.0,
    )
    injector = FaultInjector(
        app.application.registry,
        clock,
        mtbf_seconds=mtbf_seconds,
        mttr_seconds=mttr_seconds,
        device_type="PresenceSensor",
        seed=32,
    ).start()
    app.advance(24 * 3600)
    updates = len(app.entrance_panels["A22"].history)
    availability = 1.0 - injector.total_downtime / (sensors * 24 * 3600.0)
    return updates, availability, injector.stats


def test_mtbf_sweep(table, benchmark):
    def run_sweep():
        rows = []
        availabilities = {}
        for mtbf_hours in (2, 8, 32, 128):
            updates, availability, stats = run_day(mtbf_hours * 3600.0)
            availabilities[mtbf_hours] = availability
            rows.append(
                (
                    f"{mtbf_hours} h",
                    f"{availability:.1%}",
                    stats["failures"],
                    updates,
                )
            )
        return rows, availabilities

    rows, availabilities = benchmark.pedantic(run_sweep, rounds=1,
                                              iterations=1)
    table(
        "C6: sensor MTBF vs fleet availability (60 sensors, 24 h, "
        "MTTR 30 min)",
        ("MTBF", "availability", "failures", "panel updates"),
        rows,
    )
    # Shape: availability improves monotonically-ish with MTBF, and the
    # application never missed a publication (144 sweeps per day).
    assert availabilities[128] > availabilities[2]
    assert all(row[3] == 144 for row in rows)


def test_recovery_restores_sweep_size(table, benchmark):
    def run_episode():
        clock = SimulationClock()
        # start=False: the spy must be installed before the runtime wires
        # the periodic job (handlers are resolved at start()).
        app = build_parking_app(
            capacities={"A22": 20}, clock=clock, seed=33,
            environment_step_seconds=600.0, start=False,
        )
        sweep_sizes = []
        availability_impl = app.implementations["ParkingAvailability"]
        original = availability_impl.on_periodic_presence

        def spying(by_lot, discover):
            sweep_sizes.append(sum(by_lot.values()))
            return original(by_lot, discover)

        availability_impl.on_periodic_presence = spying
        app.application.start()
        app.advance(600)
        for index in range(10):
            app.application.registry.get(f"sensor-A22-{index:04d}").fail()
        app.advance(600)
        for index in range(10):
            app.application.registry.get(
                f"sensor-A22-{index:04d}"
            ).recover()
        app.advance(600)
        return sweep_sizes

    sweep_sizes = benchmark.pedantic(run_episode, rounds=1, iterations=1)
    table(
        "C6: free-count visibility through a failure/recovery episode",
        ("phase", "visible free spaces"),
        [
            ("healthy", sweep_sizes[0]),
            ("10/20 sensors down", sweep_sizes[1]),
            ("recovered", sweep_sizes[2]),
        ],
    )
    assert sweep_sizes[1] <= sweep_sizes[0]
    assert sweep_sizes[2] >= sweep_sizes[1]


def test_bench_day_under_faults(benchmark):
    def day():
        return run_day(mtbf_seconds=4 * 3600.0)

    updates, availability, __ = benchmark.pedantic(
        day, rounds=2, iterations=1
    )
    assert updates == 144
    assert 0.0 < availability <= 1.0
