"""C6 — the dependability dimension (§VI future work, built out).

Reproduced shape: as sensor MTBF shrinks, fleet availability falls and
the application sees smaller gathering sweeps — but it keeps publishing
on schedule (failures are masked, not fatal), and recovery restores the
sweep size.
"""

from repro.apps.parking import build_parking_app
from repro.runtime.clock import SimulationClock
from repro.simulation.faults import FaultInjector


def run_day(mtbf_seconds, mttr_seconds=1800.0, sensors=60):
    clock = SimulationClock()
    app = build_parking_app(
        capacities={"A22": sensors},
        clock=clock,
        seed=31,
        environment_step_seconds=600.0,
    )
    injector = FaultInjector(
        app.application.registry,
        clock,
        mtbf_seconds=mtbf_seconds,
        mttr_seconds=mttr_seconds,
        device_type="PresenceSensor",
        seed=32,
    ).start()
    app.advance(24 * 3600)
    updates = len(app.entrance_panels["A22"].history)
    availability = 1.0 - injector.total_downtime / (sensors * 24 * 3600.0)
    return updates, availability, injector.stats


def test_mtbf_sweep(table, benchmark):
    def run_sweep():
        rows = []
        availabilities = {}
        for mtbf_hours in (2, 8, 32, 128):
            updates, availability, stats = run_day(mtbf_hours * 3600.0)
            availabilities[mtbf_hours] = availability
            rows.append(
                (
                    f"{mtbf_hours} h",
                    f"{availability:.1%}",
                    stats["failures"],
                    updates,
                )
            )
        return rows, availabilities

    rows, availabilities = benchmark.pedantic(run_sweep, rounds=1,
                                              iterations=1)
    table(
        "C6: sensor MTBF vs fleet availability (60 sensors, 24 h, "
        "MTTR 30 min)",
        ("MTBF", "availability", "failures", "panel updates"),
        rows,
    )
    # Shape: availability improves monotonically-ish with MTBF, and the
    # application never missed a publication (144 sweeps per day).
    assert availabilities[128] > availabilities[2]
    assert all(row[3] == 144 for row in rows)


def test_recovery_restores_sweep_size(table, benchmark):
    def run_episode():
        clock = SimulationClock()
        # start=False: the spy must be installed before the runtime wires
        # the periodic job (handlers are resolved at start()).
        app = build_parking_app(
            capacities={"A22": 20}, clock=clock, seed=33,
            environment_step_seconds=600.0, start=False,
        )
        sweep_sizes = []
        availability_impl = app.implementations["ParkingAvailability"]
        original = availability_impl.on_periodic_presence

        def spying(by_lot, discover):
            sweep_sizes.append(sum(by_lot.values()))
            return original(by_lot, discover)

        availability_impl.on_periodic_presence = spying
        app.application.start()
        app.advance(600)
        for index in range(10):
            app.application.registry.get(f"sensor-A22-{index:04d}").fail()
        app.advance(600)
        for index in range(10):
            app.application.registry.get(
                f"sensor-A22-{index:04d}"
            ).recover()
        app.advance(600)
        return sweep_sizes

    sweep_sizes = benchmark.pedantic(run_episode, rounds=1, iterations=1)
    table(
        "C6: free-count visibility through a failure/recovery episode",
        ("phase", "visible free spaces"),
        [
            ("healthy", sweep_sizes[0]),
            ("10/20 sensors down", sweep_sizes[1]),
            ("recovered", sweep_sizes[2]),
        ],
    )
    assert sweep_sizes[1] <= sweep_sizes[0]
    assert sweep_sizes[2] >= sweep_sizes[1]


def test_bench_day_under_faults(benchmark):
    def day():
        return run_day(mtbf_seconds=4 * 3600.0)

    updates, availability, __ = benchmark.pedantic(
        day, rounds=2, iterations=1
    )
    assert updates == 144
    assert 0.0 < availability <= 1.0


def test_supervised_chaos_stale_modes(table, benchmark):
    """Supervised recovery (repro.faults): 30% of the sensors die for
    30 minutes mid-run.  Both stale modes keep the publication schedule
    (periodic gathers never abort), but only ``last_known`` keeps the
    *cohort* full — the dark sensors are served from cache, counted by
    ``supervision_stale_serves_total`` — and both fleets end the run
    with every breaker closed and nothing quarantined."""
    from repro.faults.chaos import run_parking_chaos

    def run_modes():
        reports = {}
        for mode in ("skip", "last_known"):
            reports[mode] = run_parking_chaos(seed=7, stale_mode=mode)
        return reports

    reports = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    table(
        "Supervised chaos: 36/120 sensors down 30 min, by stale mode",
        ("stale mode", "publishes", "stale serves", "breaker opens",
         "recoveries", "unrecovered"),
        [
            (
                mode,
                f"{report['availability_publishes']}"
                f"/{report['expected_sweeps']}",
                report["supervision"]["stale_serves"],
                report["supervision"]["breaker_opens"],
                report["supervision"]["recoveries"],
                report["unrecovered_failures"],
            )
            for mode, report in reports.items()
        ],
    )
    for report in reports.values():
        assert report["missed_publishes"] == 0
        assert report["recovered"] is True
    assert reports["skip"]["supervision"]["stale_serves"] == 0
    assert reports["last_known"]["supervision"]["stale_serves"] > 0
